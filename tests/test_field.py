"""Matching-event fields: the static and lazy (BEQ-backed) implementations
must agree on safety, counts and enumeration; the lazy field must not scan
the whole tree for local constructions."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    ConstructionRequest,
    IGM,
    LazyBEQField,
    StaticMatchingField,
    SystemStats,
)
from repro.expressions import BooleanExpression, Operator, Predicate
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree

from conftest import random_events

SPACE = Rect(0, 0, 10_000, 10_000)
RADIUS = 700.0


@pytest.fixture
def world():
    rng = random.Random(21)
    grid = Grid(40, SPACE)
    events = random_events(rng, SPACE, 300)
    tree = BEQTree(SPACE, emax=16)
    tree.insert_all(events)
    expression = BooleanExpression([Predicate("a1", Operator.LE, 6)])
    matching = [e.location for e in events if expression.matches(e.attributes)]
    return grid, tree, expression, matching


class TestStaticField:
    def test_counts(self, world):
        grid, _, _, matching = world
        field = StaticMatchingField(grid, matching)
        for cell in grid.all_cells():
            expected = sum(1 for p in matching if grid.cell_of(p) == cell)
            assert field.count_in_cell(cell) == expected

    def test_safety_matches_brute_force(self, world):
        grid, _, _, matching = world
        field = StaticMatchingField(grid, matching)
        for cell in list(grid.all_cells())[::17]:
            rect = grid.cell_rect(cell)
            expected = all(rect.min_distance_to_point(p) > RADIUS for p in matching)
            assert field.is_cell_safe(cell, RADIUS) == expected

    def test_unsafe_cells_complement_of_safe(self, world):
        grid, _, _, matching = world
        field = StaticMatchingField(grid, matching)
        unsafe = field.unsafe_cells(RADIUS)
        for cell in list(grid.all_cells())[::13]:
            assert (cell in unsafe) == (not field.is_cell_safe(cell, RADIUS))

    def test_all_points(self, world):
        grid, _, _, matching = world
        field = StaticMatchingField(grid, matching)
        assert sorted(map(repr, field.all_points())) == sorted(map(repr, matching))


class TestLazyField:
    def test_agrees_with_static_on_safety_and_counts(self, world):
        grid, tree, expression, matching = world
        static = StaticMatchingField(grid, matching)
        lazy = LazyBEQField(grid, tree, expression)
        for cell in list(grid.all_cells())[::11]:
            assert lazy.is_cell_safe(cell, RADIUS) == static.is_cell_safe(cell, RADIUS)
            assert lazy.count_in_cell(cell) == static.count_in_cell(cell)

    def test_all_points_equals_static(self, world):
        grid, tree, expression, matching = world
        lazy = LazyBEQField(grid, tree, expression)
        assert sorted(map(repr, lazy.all_points())) == sorted(
            map(repr, StaticMatchingField(grid, matching).all_points())
        )

    def test_excluded_ids_are_invisible(self, world):
        grid, tree, expression, _ = world
        all_ids = {e.event_id for e in tree.be_match(expression)}
        excluded = set(list(all_ids)[: len(all_ids) // 2])
        lazy = LazyBEQField(grid, tree, expression, excluded_ids=excluded)
        assert len(lazy.all_points()) == len(all_ids) - len(excluded)

    def test_local_queries_do_not_scan_everything(self, world):
        grid, tree, expression, _ = world
        lazy = LazyBEQField(grid, tree, expression)
        lazy.is_cell_safe((20, 20), RADIUS)
        assert lazy.events_scanned < len(tree)

    def test_leaves_scanned_at_most_once(self, world):
        grid, tree, expression, _ = world
        lazy = LazyBEQField(grid, tree, expression)
        for cell in [(20, 20), (21, 20), (20, 21), (22, 22)]:
            lazy.is_cell_safe(cell, RADIUS)
        total_leaves = sum(1 for _ in tree.leaves())
        assert lazy.leaves_scanned <= total_leaves


class TestConstructionEquivalence:
    def test_igm_identical_under_both_fields(self, world):
        grid, tree, expression, matching = world
        stats = SystemStats(event_rate=3.0, total_events=300)
        results = []
        for field in (
            StaticMatchingField(grid, matching),
            LazyBEQField(grid, tree, expression),
        ):
            request = ConstructionRequest(
                location=Point(5000, 5000),
                velocity=Point(50, 20),
                radius=RADIUS,
                grid=grid,
                matching_field=field,
                stats=stats,
            )
            results.append(IGM().construct(request))
        assert set(results[0].safe.cells) == set(results[1].safe.cells)
        assert set(results[0].impact.cells) == set(results[1].impact.cells)
