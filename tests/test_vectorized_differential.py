"""Strategy-differential suite: the vectorized core vs its scalar oracle.

The array-backed construction core (``repro.core.vectorized``, DESIGN.md
§14) claims *byte identity* with the scalar iGM/idGM — not approximate
agreement, not same-multiset-different-order: every field of every
:class:`RegionPair`, including the exact IEEE-754 bits of the balance-ratio
diagnostics and the frontier pop order, must match.  This module is the
enforcement: hypothesis-driven differentials over randomized corpora,
radii, termination budgets and caps, plus hand-built degenerate cases
(Lemma 1 empty regions, zero radius, boundary-straddling dilations) and
kernel-level differentials for every array primitive the core is built on
(point dilation, cell-set dilation, Morton interleave, WAH encoding).

Floats are compared as *bytes* (``struct.pack``), which is stricter than
``==``: it distinguishes ``-0.0`` from ``0.0`` and would catch a NaN
sneaking into one path only.

Every test carries the ``differential`` marker so CI can run this file as
its own lane with a raised example budget: set ``DIFFERENTIAL_EXAMPLES``
(default 25) to scale every hypothesis test in the module.
"""

from __future__ import annotations

import os
import random
import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitmap.wah import WAHBitmap
from repro.core import (
    GridMethod,
    IDGM,
    IGM,
    VectorizedIDGM,
    VectorizedIGM,
    VectorizedIncrementalGridMethod,
    VoronoiMethod,
    vectorize_strategy,
)
from repro.core.construction import ConstructionRequest
from repro.core.cost_model import SystemStats
from repro.core.field import LazyBEQField, StaticMatchingField, dilate_point
from repro.expressions import BooleanExpression, Operator, Predicate
from repro.geometry import Grid, Point, Rect
from repro.geometry.zorder import interleave, interleave_array
from repro.index import BEQTree

from conftest import random_events

pytestmark = pytest.mark.differential

#: per-test hypothesis example budget; the CI differential lane raises it
EXAMPLES = int(os.environ.get("DIFFERENTIAL_EXAMPLES", "25"))
DIFF_SETTINGS = settings(max_examples=EXAMPLES, deadline=None)

SPACE = Rect(0.0, 0.0, 10_000.0, 10_000.0)
GRID = Grid(25, SPACE)

#: (scalar oracle, vectorized twin) per strategy family
FAMILIES = {
    "iGM": (IGM, VectorizedIGM),
    "idGM": (IDGM, VectorizedIDGM),
}


def _float_bytes(value):
    """The raw IEEE-754 bytes of a float (None passes through)."""
    if value is None:
        return None
    return struct.pack("<d", value)


def assert_pairs_identical(scalar, vectorized):
    """Every RegionPair field equal — floats to the bit, order included."""
    assert scalar.safe.cells == vectorized.safe.cells
    assert scalar.impact.cells == vectorized.impact.cells
    assert scalar.cells_examined == vectorized.cells_examined
    assert _float_bytes(scalar.last_accepted_bm) == _float_bytes(
        vectorized.last_accepted_bm
    )
    assert _float_bytes(scalar.first_rejected_bm) == _float_bytes(
        vectorized.first_rejected_bm
    )
    assert scalar.matching_in_impact == vectorized.matching_in_impact
    assert scalar.visit_order == vectorized.visit_order
    # The wire encoding downstream of the pair must agree too (this also
    # crosses the WAH array cutover whenever the region is large).
    assert scalar.safe.to_bitmap() == vectorized.safe.to_bitmap()
    assert scalar.impact.to_bitmap() == vectorized.impact.to_bitmap()


def static_request(seed: int, radius=None, event_count=None) -> ConstructionRequest:
    """A seeded static-field request; fresh field every call (no sharing)."""
    rng = random.Random(seed)
    count = event_count if event_count is not None else rng.randint(0, 80)
    points = [
        Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000)) for _ in range(count)
    ]
    if radius is None:
        radius = rng.choice(
            [0.0, rng.uniform(1, 60), rng.uniform(300, 2500), rng.uniform(4000, 9000)]
        )
    return ConstructionRequest(
        location=Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000)),
        velocity=Point(rng.uniform(-40, 40), rng.uniform(-40, 40)),
        radius=radius,
        grid=GRID,
        matching_field=StaticMatchingField(GRID, points),
        stats=SystemStats(event_rate=rng.uniform(0.5, 8), total_events=200),
    )


# ----------------------------------------------------------------------
# RegionPair differentials
# ----------------------------------------------------------------------
@DIFF_SETTINGS
@given(
    seed=st.integers(0, 2**32 - 1),
    family=st.sampled_from(sorted(FAMILIES)),
    beta=st.sampled_from([0.25, 1.0, 4.0]),
    max_cells=st.sampled_from([None, 1, 7, 60, 400]),
    incremental_impact=st.booleans(),
)
def test_static_field_pairs_are_byte_identical(
    seed, family, beta, max_cells, incremental_impact
):
    """The core claim over fully materialised fields, all knobs randomized."""
    scalar_cls, vector_cls = FAMILIES[family]
    kwargs = dict(
        beta=beta,
        max_cells=max_cells,
        incremental_impact=incremental_impact,
        record_visits=True,
    )
    scalar_pair = scalar_cls(**kwargs).construct(static_request(seed))
    vector_pair = vector_cls(**kwargs).construct(static_request(seed))
    assert_pairs_identical(scalar_pair, vector_pair)


@DIFF_SETTINGS
@given(
    seed=st.integers(0, 2**32 - 1),
    family=st.sampled_from(sorted(FAMILIES)),
    emax=st.sampled_from([4, 16, 64]),
)
def test_lazy_beq_field_pairs_and_scan_counters_are_identical(seed, family, emax):
    """On-demand (BEQ-Tree) mode: identical pairs AND identical tree work.

    The vectorized path grows field coverage through
    ``ensure_cell_neighbourhood`` instead of per-cell safety queries; the
    covered rectangles must evolve identically, so ``events_scanned`` and
    ``leaves_scanned`` — the Figure 13 server-work counters — must land on
    the same values, not just the same regions.
    """
    rng = random.Random(seed)
    grid = Grid(40, SPACE)
    events = random_events(rng, SPACE, rng.randint(20, 250))
    expression = BooleanExpression(
        [Predicate(f"a{rng.randint(0, 5)}", Operator.LE, rng.randint(2, 8))]
    )
    radius = rng.choice([rng.uniform(100, 900), rng.uniform(1200, 3000)])
    location = Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000))
    velocity = Point(rng.uniform(-40, 40), rng.uniform(-40, 40))
    stats = SystemStats(event_rate=rng.uniform(0.5, 6), total_events=len(events))

    def build(strategy_cls):
        tree = BEQTree(SPACE, emax=emax)
        tree.insert_all(events)
        field = LazyBEQField(grid, tree, expression)
        request = ConstructionRequest(
            location=location,
            velocity=velocity,
            radius=radius,
            grid=grid,
            matching_field=field,
            stats=stats,
        )
        pair = strategy_cls(max_cells=120, record_visits=True).construct(request)
        return pair, field

    scalar_cls, vector_cls = FAMILIES[family]
    scalar_pair, scalar_field = build(scalar_cls)
    vector_pair, vector_field = build(vector_cls)
    assert_pairs_identical(scalar_pair, vector_pair)
    assert scalar_field.events_scanned == vector_field.events_scanned
    assert scalar_field.leaves_scanned == vector_field.leaves_scanned


@DIFF_SETTINGS
@given(seed=st.integers(0, 2**32 - 1), family=st.sampled_from(sorted(FAMILIES)))
def test_field_reuse_across_constructions_stays_identical(seed, family):
    """Repair-mode shape: one field serves several constructions.

    The vectorized strategy keeps a cursor-backed array view per field;
    reusing the *same* field (and strategy instance) for a second
    construction from a different location must stay identical to the
    scalar oracle doing the same — this is the incremental ``_sync`` path.
    """
    rng = random.Random(seed)
    count = rng.randint(5, 60)
    points = [
        Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000)) for _ in range(count)
    ]
    radius = rng.uniform(300, 2000)
    stats = SystemStats(event_rate=rng.uniform(0.5, 6), total_events=count)
    locations = [
        Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000)) for _ in range(3)
    ]
    velocity = Point(rng.uniform(-40, 40), rng.uniform(-40, 40))

    scalar_cls, vector_cls = FAMILIES[family]
    scalar = scalar_cls(max_cells=150, record_visits=True)
    vector = vector_cls(max_cells=150, record_visits=True)
    scalar_field = StaticMatchingField(GRID, points)
    vector_field = StaticMatchingField(GRID, points)
    for location in locations:
        def request(field):
            return ConstructionRequest(
                location=location,
                velocity=velocity,
                radius=radius,
                grid=GRID,
                matching_field=field,
                stats=stats,
            )
        assert_pairs_identical(
            scalar.construct(request(scalar_field)),
            vector.construct(request(vector_field)),
        )


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_lemma1_empty_region_degenerate_case(family):
    """Lemma 1's boundary: a subscriber standing inside an unsafe cell.

    The expansion must reject the start cell immediately — empty safe
    region, empty impact region, one cell examined — identically on both
    paths, with the rejected ``bm`` byte-equal (it is ``inf`` here:
    ``ts = 0`` against a positive ``ti``).
    """
    scalar_cls, vector_cls = FAMILIES[family]
    location = Point(5_000.0, 5_000.0)
    request_for = lambda: ConstructionRequest(  # noqa: E731 - two fresh fields
        location=location,
        velocity=Point(10.0, 0.0),
        radius=1_000.0,
        grid=GRID,
        matching_field=StaticMatchingField(GRID, [location]),  # event on top of us
        stats=SystemStats(event_rate=2.0, total_events=10),
    )
    scalar_pair = scalar_cls(record_visits=True).construct(request_for())
    vector_pair = vector_cls(record_visits=True).construct(request_for())
    assert scalar_pair.safe.is_empty() and vector_pair.safe.is_empty()
    assert scalar_pair.impact.is_empty() and vector_pair.impact.is_empty()
    assert_pairs_identical(scalar_pair, vector_pair)


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("radius", [0.0, 15_000.0])
def test_extreme_radii_degenerate_cases(family, radius):
    """Zero radius (events only poison their own cell) and a radius larger
    than the space diagonal (every event poisons everything)."""
    scalar_cls, vector_cls = FAMILIES[family]
    scalar_pair = scalar_cls(max_cells=200, record_visits=True).construct(
        static_request(11, radius=radius, event_count=12)
    )
    vector_pair = vector_cls(max_cells=200, record_visits=True).construct(
        static_request(11, radius=radius, event_count=12)
    )
    assert_pairs_identical(scalar_pair, vector_pair)


def test_empty_corpus_covers_space_identically():
    """No events: the uncapped expansion floods the whole grid on both
    paths, and the resulting 625-cell bitmaps cross the WAH array cutover."""
    scalar_pair = IGM(record_visits=True).construct(
        static_request(3, radius=500.0, event_count=0)
    )
    vector_pair = VectorizedIGM(record_visits=True).construct(
        static_request(3, radius=500.0, event_count=0)
    )
    assert len(scalar_pair.safe.cells) == GRID.n * GRID.n
    assert_pairs_identical(scalar_pair, vector_pair)


# ----------------------------------------------------------------------
# Frontier tie-break order
# ----------------------------------------------------------------------
def test_tiebreak_visits_equal_score_cells_in_morton_order():
    """A subscriber at an exact cell centre with zero velocity makes the
    four edge-adjacent neighbours *exactly* tied (equal priority, equal
    distance) and the four corner neighbours a second tied group.  The
    deterministic tie-break must order each group by ascending Morton code
    — on both paths, in the same order."""
    grid = Grid(40, SPACE)
    center = grid.cell_center((10, 10))
    request_for = lambda: ConstructionRequest(  # noqa: E731
        location=center,
        velocity=Point(0.0, 0.0),
        radius=500.0,
        grid=grid,
        matching_field=StaticMatchingField(grid, []),
        stats=SystemStats(event_rate=2.0, total_events=100),
    )
    scalar_pair = IGM(max_cells=9, record_visits=True).construct(request_for())
    vector_pair = VectorizedIGM(max_cells=9, record_visits=True).construct(
        request_for()
    )
    assert scalar_pair.visit_order == vector_pair.visit_order
    order = scalar_pair.visit_order
    assert order[0] == (10, 10)
    edges = [c for c in order if abs(c[0] - 10) + abs(c[1] - 10) == 1]
    corners = [c for c in order if abs(c[0] - 10) == 1 and abs(c[1] - 10) == 1]
    # Edge cells (distance cw/2) all pop before corner cells (distance
    # cw/sqrt(2)), each group in ascending Morton order.
    assert list(order[1:5]) == edges and list(order[5:9]) == corners
    assert edges == sorted(edges, key=lambda c: interleave(*c))
    assert corners == sorted(corners, key=lambda c: interleave(*c))


@DIFF_SETTINGS
@given(
    seed=st.integers(0, 2**32 - 1),
    family=st.sampled_from(sorted(FAMILIES)),
)
def test_visit_order_is_independent_of_corpus_ordering(seed, family):
    """The tie-break regression property: the pop order is a function of
    the *request*, never of incidental iteration order.  Feeding the same
    corpus in a shuffled order (which permutes every internal dict/list the
    field builds) must reproduce the identical visit order on both paths."""
    rng = random.Random(seed)
    count = rng.randint(0, 60)
    points = [
        Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000)) for _ in range(count)
    ]
    # A cell-centre location with zero velocity maximises exact score ties.
    location = GRID.cell_center((rng.randint(0, 24), rng.randint(0, 24)))
    radius = rng.uniform(200, 2000)
    stats = SystemStats(event_rate=2.0, total_events=max(1, count))
    shuffled = list(points)
    rng.shuffle(shuffled)

    def build(strategy_cls, corpus):
        request = ConstructionRequest(
            location=location,
            velocity=Point(0.0, 0.0),
            radius=radius,
            grid=GRID,
            matching_field=StaticMatchingField(GRID, corpus),
            stats=stats,
        )
        return strategy_cls(max_cells=80, record_visits=True).construct(request)

    scalar_cls, vector_cls = FAMILIES[family]
    reference = build(scalar_cls, points)
    assert build(scalar_cls, shuffled).visit_order == reference.visit_order
    assert build(vector_cls, points).visit_order == reference.visit_order
    assert build(vector_cls, shuffled).visit_order == reference.visit_order


# ----------------------------------------------------------------------
# Kernel differentials
# ----------------------------------------------------------------------
@DIFF_SETTINGS
@given(
    seed=st.integers(0, 2**32 - 1),
    count=st.integers(0, 40),
    near_edge=st.booleans(),
)
def test_dilate_points_mask_equals_folded_dilate_point(seed, count, near_edge):
    """The array point-dilation kernel vs the scalar fold, point by point —
    including points hugging (and outside) the space boundary."""
    rng = random.Random(seed)
    grid = Grid(40, SPACE)
    if near_edge:
        points = [
            Point(rng.uniform(-200, 400), rng.uniform(-200, 10_200))
            for _ in range(count)
        ]
    else:
        points = [
            Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000))
            for _ in range(count)
        ]
    radius = rng.choice([0.0, rng.uniform(1, 80), rng.uniform(200, 1500)])
    expected = set()
    for p in points:
        dilate_point(grid, p, radius, expected)
    xs = np.array([p.x for p in points], dtype=np.float64)
    ys = np.array([p.y for p in points], dtype=np.float64)
    mask = grid.dilate_points_mask(xs, ys, radius)
    ii, jj = np.nonzero(mask)
    assert set(zip(ii.tolist(), jj.tolist())) == expected


@DIFF_SETTINGS
@given(seed=st.integers(0, 2**32 - 1), out_of_bounds=st.booleans())
def test_grid_dilate_array_and_scalar_paths_agree(seed, out_of_bounds):
    """``Grid.dilate`` through both implementations on the same cell set.

    Out-of-bounds seed cells (legal input: callers may dilate hypothetical
    cells) must take the scalar fallback and still clip correctly.
    """
    import repro.geometry.grid as grid_module

    rng = random.Random(seed)
    grid = Grid(30, SPACE)
    lo, hi = (-5, 34) if out_of_bounds else (0, 29)
    cells = {
        (rng.randint(lo, hi), rng.randint(lo, hi))
        for _ in range(rng.randint(0, 50))
    }
    radius = rng.choice([0.0, rng.uniform(1, 400), rng.uniform(600, 2000)])
    saved = grid_module._DILATE_ARRAY_CUTOVER
    try:
        grid_module._DILATE_ARRAY_CUTOVER = 1
        forced_array = grid.dilate(cells, radius)
        grid_module._DILATE_ARRAY_CUTOVER = 1 << 60
        forced_scalar = grid.dilate(cells, radius)
    finally:
        grid_module._DILATE_ARRAY_CUTOVER = saved
    assert forced_array == forced_scalar


@pytest.mark.parametrize("kernel", ["scalar", "array"])
class TestDilationEdgeCases:
    """Satellite geometry cases, identical through both dilation kernels."""

    def _dilate(self, grid, point, radius, kernel):
        if kernel == "scalar":
            cells = set()
            dilate_point(grid, point, radius, cells)
            return cells
        mask = grid.dilate_points_mask(
            np.array([point.x]), np.array([point.y]), radius
        )
        ii, jj = np.nonzero(mask)
        return set(zip(ii.tolist(), jj.tolist()))

    def test_radius_straddling_the_space_boundary(self, kernel):
        """A point one cell from the edge with a radius reaching past it:
        the dilation clips at the boundary, never wraps or throws."""
        grid = Grid(40, SPACE)  # 250-unit cells
        point = Point(125.0, 5_125.0)  # centre of cell (0, 20)
        cells = self._dilate(grid, point, 1_000.0, kernel)
        assert all(0 <= i < 40 and 0 <= j < 40 for i, j in cells)
        assert (0, 20) in cells
        assert min(i for i, _ in cells) == 0  # reached the wall...
        assert (0, 16) in cells and (0, 24) in cells  # ...and spread along it
        brute = {
            c
            for c in grid.all_cells()
            if grid.cell_rect(c).min_distance_to_point(point) <= 1_000.0
        }
        assert cells == brute

    def test_zero_radius_marks_only_touching_cells(self, kernel):
        grid = Grid(40, SPACE)
        inside = Point(5_125.0, 5_125.0)  # strictly inside cell (20, 20)
        assert self._dilate(grid, inside, 0.0, kernel) == {(20, 20)}
        on_edge = Point(5_000.0, 5_125.0)  # exactly on the x-edge 20|19
        assert self._dilate(grid, on_edge, 0.0, kernel) == {(19, 20), (20, 20)}

    def test_cell_exactly_on_the_dilation_circle_is_included(self, kernel):
        """Closed inclusion at distance == radius, to the last bit: the
        cell whose nearest edge is exactly ``radius`` away is in; shrink
        the radius by one ulp and it drops out."""
        grid = Grid(40, SPACE)
        point = grid.cell_center((10, 10))  # (2625, 2625); cell width 250
        exact = 625.0  # distance to the near edge of cells (13, 10)/(7, 10)
        at = self._dilate(grid, point, exact, kernel)
        assert {(13, 10), (7, 10), (10, 13), (10, 7)} <= at
        below = self._dilate(grid, point, float(np.nextafter(exact, 0.0)), kernel)
        assert not {(13, 10), (7, 10), (10, 13), (10, 7)} & below
        assert (12, 10) in below  # the next ring in survives


@DIFF_SETTINGS
@given(
    length=st.integers(0, 400),
    data=st.data(),
)
def test_wah_from_positions_array_is_word_identical(length, data):
    """The array WAH constructor vs the scalar one: same words, same
    round-trip — across empty bitmaps, full groups, dense and sparse."""
    if length == 0:
        positions = []
    else:
        positions = data.draw(
            st.lists(st.integers(0, length - 1), max_size=length * 2)
        )
    scalar = WAHBitmap.from_positions(positions, length)
    array = WAHBitmap.from_positions_array(
        np.array(positions, dtype=np.int64), length
    )
    assert scalar.words == array.words
    assert scalar == array
    assert array.positions() == sorted(set(positions))


def test_wah_from_positions_array_full_and_empty_runs():
    """Long all-ones and all-zero runs exercise the fill-word encoding."""
    length = 31 * 40 + 5
    full = list(range(length))
    assert (
        WAHBitmap.from_positions_array(np.array(full, dtype=np.int64), length)
        == WAHBitmap.from_positions(full, length)
    )
    empty = WAHBitmap.from_positions_array(np.array([], dtype=np.int64), length)
    assert empty == WAHBitmap.from_positions([], length)
    assert empty.positions() == []


def test_wah_from_positions_array_rejects_out_of_range():
    with pytest.raises(ValueError):
        WAHBitmap.from_positions_array(np.array([5], dtype=np.int64), 5)
    with pytest.raises(ValueError):
        WAHBitmap.from_positions_array(np.array([-1], dtype=np.int64), 5)


@DIFF_SETTINGS
@given(
    coords=st.lists(
        st.tuples(st.integers(0, 2**31 - 1), st.integers(0, 2**31 - 1)),
        max_size=64,
    )
)
def test_interleave_array_matches_scalar(coords):
    i = np.array([c[0] for c in coords], dtype=np.int64)
    j = np.array([c[1] for c in coords], dtype=np.int64)
    expected = [interleave(a, b) for a, b in coords]
    assert interleave_array(i, j).tolist() == expected


# ----------------------------------------------------------------------
# Strategy upgrade plumbing
# ----------------------------------------------------------------------
def test_vectorize_strategy_copies_parameters_and_is_idempotent():
    scalar = IDGM(alpha=0.3, beta=2.0, max_cells=99, incremental_impact=False)
    twin = vectorize_strategy(scalar)
    assert isinstance(twin, VectorizedIncrementalGridMethod)
    assert (twin.alpha, twin.beta, twin.max_cells, twin.incremental_impact) == (
        0.3,
        2.0,
        99,
        False,
    )
    assert twin.name == "idGM-vec"
    assert vectorize_strategy(twin) is twin


def test_vectorize_strategy_leaves_non_incremental_methods_alone():
    for strategy in (VoronoiMethod(), GridMethod()):
        assert vectorize_strategy(strategy) is strategy
