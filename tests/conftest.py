"""Shared fixtures: a small deterministic world for unit tests."""

from __future__ import annotations

import random

import pytest

from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect


@pytest.fixture
def space() -> Rect:
    return Rect(0.0, 0.0, 10_000.0, 10_000.0)


@pytest.fixture
def grid(space: Rect) -> Grid:
    return Grid(50, space)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(42)


def make_event(event_id: int, location: Point, **attributes) -> Event:
    """Terse event constructor for tests."""
    return Event(event_id, attributes or {"kind": "generic"}, location)


def random_events(rng: random.Random, space: Rect, count: int, attributes: int = 6):
    """Random events over a small integer attribute space."""
    events = []
    for event_id in range(count):
        attrs = {
            f"a{rng.randint(0, attributes - 1)}": rng.randint(0, 9)
            for _ in range(rng.randint(1, 4))
        }
        location = Point(
            rng.uniform(space.x_min, space.x_max),
            rng.uniform(space.y_min, space.y_max),
        )
        events.append(Event(event_id, attrs, location))
    return events


def make_subscription(sub_id: int = 1, radius: float = 2_000.0, *predicates) -> Subscription:
    if not predicates:
        predicates = (
            Predicate("a1", Operator.LE, 5),
            Predicate("a2", Operator.GE, 2),
        )
    return Subscription(sub_id, BooleanExpression(predicates), radius=radius)
