"""Smoke tests: the documented examples must keep running.

Only the fast examples are executed end to end; the longer ones
(taxi_monitoring, index_comparison, adaptive_regions) are compile-checked
so a syntax or import break still fails fast.
"""

from __future__ import annotations

import pathlib
import py_compile
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def test_examples_directory_complete():
    names = {path.name for path in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "shopping_alerts.py", "taxi_monitoring.py",
            "index_comparison.py", "flash_sales.py", "adaptive_regions.py",
            "network_service.py"} <= names


@pytest.mark.parametrize("name", sorted(p.name for p in EXAMPLES.glob("*.py")))
def test_examples_compile(name):
    py_compile.compile(str(EXAMPLES / name), doraise=True)


def test_quickstart_runs(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "subscribed" in out
    assert "notified [1]" in out
    assert "location update" in out
