"""Hypothesis round-trip properties for the whole wire protocol.

Every message type must satisfy ``decode_message(encode_message(m)) ==
m`` for arbitrary well-typed payloads — the framing, scalar tagging,
expression codec and bitmap packing all get exercised from the outside.
The hand-written cases in ``test_protocol.py`` pin the byte layout;
these properties pin totality.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.bitmap import WAHBitmap
from repro.expressions import BooleanExpression, DnfExpression, Operator, Predicate
from repro.geometry import Point
from repro.system.protocol import (
    EventPublishMessage,
    HeartbeatMessage,
    LocationPing,
    LocationReport,
    NotificationMessage,
    ResyncMessage,
    SafeRegionPush,
    SubscribeMessage,
    UnsubscribeMessage,
    decode_message,
    encode_message,
    message_bytes,
)

# ----------------------------------------------------------------------
# Strategies mirroring the wire types exactly
# ----------------------------------------------------------------------
uint64 = st.integers(min_value=0, max_value=2**64 - 1)
int64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
int32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
uint32 = st.integers(min_value=1, max_value=2**32 - 1)
finite = st.floats(allow_nan=False, allow_infinity=False)
points = st.builds(Point, finite, finite)
radii = st.floats(min_value=0.001, max_value=1e9, allow_nan=False)
names = st.text(min_size=1, max_size=12)
scalars = st.one_of(int64, finite, st.text(max_size=16))


def _between_operand(draw_pair):
    low, high = sorted(draw_pair)
    return (low, high)


predicates = st.one_of(
    # relational / equality operators over any scalar
    st.builds(
        Predicate,
        names,
        st.sampled_from(
            [Operator.EQ, Operator.NE, Operator.LT, Operator.LE, Operator.GT, Operator.GE]
        ),
        scalars,
    ),
    # BETWEEN needs an ordered homogeneous pair
    st.builds(
        lambda name, pair: Predicate(name, Operator.BETWEEN, _between_operand(pair)),
        names,
        st.one_of(st.tuples(int64, int64), st.tuples(finite, finite)),
    ),
    # IN / NOT IN over homogeneous member sets
    st.builds(
        Predicate,
        names,
        st.sampled_from([Operator.IN, Operator.NOT_IN]),
        st.one_of(
            st.frozensets(int64, min_size=1, max_size=5),
            st.frozensets(st.text(max_size=8), min_size=1, max_size=5),
        ),
    ),
)

conjunctions = st.builds(
    BooleanExpression, st.lists(predicates, min_size=1, max_size=4)
)
# a decoded single-clause expression comes back as a BooleanExpression,
# so DNF strategies always carry at least two clauses
dnfs = st.builds(DnfExpression, st.lists(conjunctions, min_size=2, max_size=3))
expressions = st.one_of(conjunctions, dnfs)

attribute_tuples = st.lists(
    st.tuples(names, scalars), max_size=5
).map(tuple)

bitmaps = st.builds(
    WAHBitmap.from_bits, st.lists(st.booleans(), min_size=1, max_size=200)
)

MESSAGES = st.one_of(
    st.builds(SubscribeMessage, uint64, radii, expressions, points, points),
    st.builds(UnsubscribeMessage, uint64),
    st.builds(LocationReport, uint64, points, points),
    st.builds(LocationPing, uint64),
    st.builds(SafeRegionPush, uint64, uint32, st.booleans(), bitmaps),
    st.builds(NotificationMessage, uint64, uint64, points, attribute_tuples),
    st.builds(EventPublishMessage, uint64, points, attribute_tuples, int32),
    st.builds(HeartbeatMessage, uint64, uint64),
    st.builds(
        ResyncMessage,
        uint64,
        points,
        points,
        st.lists(uint64, max_size=8).map(tuple),
    ),
)


@settings(max_examples=200, deadline=None)
@given(MESSAGES)
def test_every_message_roundtrips(message):
    frame = encode_message(message)
    assert decode_message(frame) == message


@settings(max_examples=100, deadline=None)
@given(MESSAGES)
def test_frame_header_accounts_for_every_byte(message):
    frame = encode_message(message)
    assert message_bytes(message) == len(frame)
    assert frame[0] == message.TYPE


@settings(max_examples=100, deadline=None)
@given(st.builds(HeartbeatMessage, uint64, uint64))
def test_heartbeat_roundtrip(message):
    assert decode_message(encode_message(message)) == message


@settings(max_examples=100, deadline=None)
@given(uint64, points, points, st.lists(uint64, max_size=32).map(tuple))
def test_resync_roundtrip(sub_id, location, velocity, received):
    message = ResyncMessage(sub_id, location, velocity, received)
    assert decode_message(encode_message(message)) == message


@settings(max_examples=150, deadline=None)
@given(MESSAGES, st.integers(min_value=0, max_value=30))
def test_truncated_frames_never_decode_silently(message, cut):
    """A frame missing trailing bytes is rejected, not misparsed."""
    frame = encode_message(message)
    if cut == 0 or cut >= len(frame):
        return
    truncated = frame[:-cut]
    try:
        decode_message(truncated)
    except Exception:
        return  # rejection is the expected outcome
    raise AssertionError("truncated frame decoded without error")
