"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

SMALL_SIM = [
    "--events", "1500", "--subscribers", "4", "--timestamps", "30",
    "--event-rate", "4", "--grid", "80", "--seed", "3",
]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.strategy == "iGM"
        assert args.event_rate == 20.0
        assert args.dataset == "twitter"

    def test_invalid_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--strategy", "magic"])


class TestSimulate:
    def test_runs_and_prints_figures(self, capsys):
        assert main(["simulate", "--strategy", "iGM", *SMALL_SIM]) == 0
        out = capsys.readouterr().out
        assert "location upd." in out
        assert "iGM" in out

    def test_gm_uses_cached_mode(self, capsys):
        assert main(["simulate", "--strategy", "GM", *SMALL_SIM]) == 0
        assert "GM" in capsys.readouterr().out

    def test_taxi_movement(self, capsys):
        assert main(["simulate", "--movement", "taxi", *SMALL_SIM]) == 0
        assert "taxi" in capsys.readouterr().out

    def test_stats_prints_span_table(self, capsys):
        assert main(["simulate", "--stats", *SMALL_SIM]) == 0
        out = capsys.readouterr().out
        assert "per-stage latency" in out
        # the hot stages the run must have traced
        for stage in ("construct", "match", "publish", "ship"):
            assert stage in out
        assert "p95 ms" in out

    def test_without_stats_no_span_table(self, capsys):
        assert main(["simulate", *SMALL_SIM]) == 0
        assert "per-stage latency" not in capsys.readouterr().out

    def test_slow_span_threshold_parses(self):
        args = build_parser().parse_args(
            ["simulate", "--slow-span-ms", "2.5", "--stats"]
        )
        assert args.slow_span_ms == 2.5
        assert args.stats is True


class TestCompare:
    def test_all_strategies_in_output(self, capsys):
        assert main(["compare", *SMALL_SIM]) == 0
        out = capsys.readouterr().out
        for strategy in ("VM", "GM", "iGM", "idGM"):
            assert strategy in out
        assert "less communication" in out

    def test_stats_prints_one_table_per_strategy(self, capsys):
        assert main(["compare", "--stats", *SMALL_SIM]) == 0
        out = capsys.readouterr().out
        for strategy in ("VM", "GM", "iGM", "idGM"):
            assert f"per-stage latency ({strategy})" in out


class TestMatch:
    def test_indexes_agree_and_report(self, capsys):
        assert main(["match", "--events", "2000", "--queries", "8"]) == 0
        out = capsys.readouterr().out
        for name in ("Quadtree", "k-index", "OpIndex", "BEQ-Tree"):
            assert name in out
        assert "per query" in out


TINY_SIM = [
    "--events", "400", "--subscribers", "4", "--timestamps", "10",
    "--event-rate", "2", "--grid", "40", "--seed", "3",
]


class TestRecordReplay:
    def test_record_requires_trace(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["record"])

    def test_record_then_replay_round_trip(self, tmp_path, capsys):
        trace = str(tmp_path / "trace")
        assert main(["record", "--trace", trace, *TINY_SIM]) == 0
        out = capsys.readouterr().out
        assert "recorded" in out
        assert (tmp_path / "trace" / "journal.log").exists()
        assert (tmp_path / "trace" / "meta.json").exists()

        log_path = str(tmp_path / "replay.log")
        assert main(["replay", "--trace", trace, "--out", log_path]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out and "sha256" in out

        # the same trace through a different configuration is identical
        assert main([
            "replay", "--trace", trace, "--shards", "2", "--batch-size", "4",
            "--expect", log_path,
        ]) == 0
        assert "byte-identical" in capsys.readouterr().out

    def test_replay_diff_detects_divergence(self, tmp_path, capsys):
        trace = str(tmp_path / "trace")
        assert main(["record", "--trace", trace, *TINY_SIM]) == 0
        bogus = tmp_path / "bogus.log"
        bogus.write_text("t=1 sub=999 event=999\n")
        capsys.readouterr()
        assert main(["replay", "--trace", trace, "--expect", str(bogus)]) == 1
        assert "DIVERGED" in capsys.readouterr().err


class TestFigure:
    def test_lists_available_tables(self, capsys):
        # the benchmarks may or may not have run; both paths are valid
        code = main(["figure"])
        out = capsys.readouterr()
        assert code in (0, 1)

    def test_unknown_figure_errors(self):
        code = main(["figure", "fig99z"])
        assert code == 1
