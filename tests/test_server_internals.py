"""Server internals: the cached-mode region reuse, the protocol helper
constructors, the min-speed floor and the ablation switch."""

from __future__ import annotations

import pytest

from repro.core import GridMethod, IGM
from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree
from repro.system import CallbackTransport, ServerConfig, ElapsServer
from repro.system.protocol import (
    NotificationMessage,
    SafeRegionPush,
    decode_message,
    encode_message,
    notification_for,
    region_push_for,
)

SPACE = Rect(0, 0, 10_000, 10_000)


def make_server(strategy=None, **config_fields):
    return ElapsServer(
        Grid(40, SPACE),
        strategy or IGM(max_cells=400),
        ServerConfig(initial_rate=1.0, **config_fields),
        event_index=BEQTree(SPACE, emax=32))


def make_sub(sub_id=1, radius=1500.0):
    return Subscription(
        sub_id,
        BooleanExpression([Predicate("topic", Operator.EQ, "sale")]),
        radius=radius,
    )


def sale(event_id, x, y):
    return Event(event_id, {"topic": "sale"}, Point(x, y))


class TestProtocolHelpers:
    def test_notification_for_roundtrip(self):
        event = Event(9, {"b": 2, "a": 1}, Point(3.0, 4.0))
        message = notification_for(7, event)
        assert isinstance(message, NotificationMessage)
        assert message.attributes == (("a", 1), ("b", 2))  # sorted, stable
        assert decode_message(encode_message(message)) == message

    def test_region_push_for_complement_region(self):
        server = make_server(strategy=GridMethod(), matching_mode="cached")
        server.bootstrap([sale(1, 5_000, 5_000)])
        sub = make_sub()
        _, region = server.subscribe(sub, Point(1_000, 1_000), Point(40, 0))
        push = region_push_for(sub.sub_id, region)
        assert isinstance(push, SafeRegionPush)
        assert push.complement is True
        # the complement encoding ships only the excluded cells
        assert push.bitmap.compressed_bytes() < 4_000
        assert decode_message(encode_message(push)) == push


class TestCachedRegionReuse:
    def test_gm_region_reused_until_matching_set_changes(self):
        server = make_server(strategy=GridMethod(), matching_mode="cached")
        server.bootstrap([sale(1, 8_000, 8_000)])
        sub = make_sub()
        server.subscribe(sub, Point(1_000, 1_000), Point(40, 0))
        server.transport = CallbackTransport(
            locate=lambda sub_id: (Point(1_000, 1_000), Point(40, 0)))
        built = server.metrics.constructions
        # a location update with an unchanged matching set reuses the pair
        server.report_location(sub.sub_id, Point(1_500, 1_000), Point(40, 0), now=1)
        assert server.metrics.constructions == built
        # a new matching event outside the circle changes the set: GM's
        # whole-space impact region catches it and a real rebuild happens
        server.publish(sale(2, 6_000, 6_000), now=2)
        assert server.metrics.constructions > built
        rebuilt = server.metrics.constructions
        # and the new pair is reused again afterwards
        server.report_location(sub.sub_id, Point(1_600, 1_000), Point(40, 0), now=3)
        assert server.metrics.constructions == rebuilt

    def test_igm_never_reuses(self):
        server = make_server(matching_mode="cached")
        server.bootstrap([sale(1, 8_000, 8_000)])
        sub = make_sub()
        server.subscribe(sub, Point(1_000, 1_000), Point(40, 0))
        built = server.metrics.constructions
        server.report_location(sub.sub_id, Point(1_500, 1_000), Point(40, 0), now=1)
        assert server.metrics.constructions == built + 1


class TestMinSpeedFloor:
    def test_parked_subscriber_still_gets_a_region(self):
        server = make_server(min_speed=1.0)
        sub = make_sub()
        _, region = server.subscribe(sub, Point(5_000, 5_000), Point(0, 0))
        # without the floor, ts would be infinite and the region empty
        assert not region.is_empty()


class TestImpactAblationSwitch:
    def test_disabling_impact_pings_on_every_match(self):
        results = {}
        for flag in (True, False):
            server = make_server(use_impact_region=flag, strategy=IGM(max_cells=4))
            sub = make_sub(radius=500.0)
            server.subscribe(sub, Point(1_000, 1_000), Point(10, 0))
            server.transport = CallbackTransport(
                locate=lambda sub_id: (Point(1_000, 1_000), Point(10, 0)))
            # a far matching event: outside any reasonable impact region
            server.publish(sale(10, 9_500, 9_500), now=1)
            results[flag] = server.metrics.event_arrival_rounds
        assert results[True] == 0
        assert results[False] == 1


class TestRecordBookkeeping:
    def test_refresh_location_via_locator(self):
        server = make_server()
        sub = make_sub()
        server.subscribe(sub, Point(5_000, 5_000), Point(40, 0))
        server.transport = CallbackTransport(
            locate=lambda sub_id: (Point(5_100, 5_000), Point(45, 5)))
        record = server.subscribers[sub.sub_id]
        server._refresh_location(record)
        assert record.location == Point(5_100, 5_000)
        assert record.velocity == Point(45, 5)

    def test_delivered_excluded_from_matching_field(self):
        server = make_server(matching_mode="cached")
        server.bootstrap([sale(1, 5_000, 6_800)])  # outside r, matching
        sub = make_sub()
        server.subscribe(sub, Point(5_000, 5_000), Point(40, 0))
        record = server.subscribers[sub.sub_id]
        assert server._matching_signature(record) == {1}
        # once delivered, the event stops constraining the safe region
        record.delivered.add(1)
        assert server._matching_signature(record) == frozenset()
