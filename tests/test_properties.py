"""Cross-cutting property tests on core invariants (hypothesis)."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.bitmap import WAHBitmap
from repro.core import CostModel, SystemStats
from repro.geometry import Grid, Point, Rect, deinterleave, interleave
from repro.trajectories import walk_polyline

SPACE = Rect(0, 0, 10_000, 10_000)

points = st.builds(
    Point,
    st.floats(min_value=0, max_value=10_000, allow_nan=False),
    st.floats(min_value=0, max_value=10_000, allow_nan=False),
)


class TestPolylineProperties:
    @given(
        waypoints=st.lists(points, min_size=2, max_size=6),
        steps=st.lists(st.floats(min_value=0, max_value=500), min_size=1, max_size=30),
    )
    @settings(max_examples=80, deadline=None)
    def test_walker_never_overshoots_per_step(self, waypoints, steps):
        positions = walk_polyline(waypoints, steps)
        for k, step in enumerate(steps):
            moved = positions[k].distance_to(positions[k + 1])
            assert moved <= step + 1e-6

    @given(
        waypoints=st.lists(points, min_size=2, max_size=6),
        steps=st.lists(st.floats(min_value=1, max_value=500), min_size=1, max_size=30),
    )
    @settings(max_examples=80, deadline=None)
    def test_walker_stays_on_or_before_polyline_end(self, waypoints, steps):
        positions = walk_polyline(waypoints, steps)
        total_length = sum(
            waypoints[i].distance_to(waypoints[i + 1]) for i in range(len(waypoints) - 1)
        )
        travelled = sum(
            positions[i].distance_to(positions[i + 1]) for i in range(len(positions) - 1)
        )
        assert travelled <= total_length + 1e-6

    @given(steps=st.lists(st.floats(min_value=0.1, max_value=50), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_straight_line_distance_conservation(self, steps):
        """On a long straight segment every step is spent exactly."""
        waypoints = [Point(0, 0), Point(1e9, 0)]
        positions = walk_polyline(waypoints, steps)
        assert math.isclose(positions[-1].x, sum(steps), rel_tol=1e-9, abs_tol=1e-4)


class TestGridProperties:
    @given(
        x=st.floats(min_value=0, max_value=9_999.99),
        y=st.floats(min_value=0, max_value=9_999.99),
        n=st.integers(min_value=1, max_value=64),
    )
    def test_cell_of_contains_the_point(self, x, y, n):
        grid = Grid(n, SPACE)
        cell = grid.cell_of(Point(x, y))
        assert grid.cell_rect(cell).contains_point(Point(x, y))

    @given(
        n=st.integers(min_value=2, max_value=32),
        i=st.integers(min_value=0, max_value=31),
        j=st.integers(min_value=0, max_value=31),
        radius=st.floats(min_value=1, max_value=4_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_dilation_covers_the_cell_itself(self, n, i, j, radius):
        grid = Grid(n, SPACE)
        cell = (i % n, j % n)
        assert cell in grid.dilate({cell}, radius)

    @given(
        n=st.integers(min_value=2, max_value=24),
        radius=st.floats(min_value=100, max_value=3_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_strips_partition_consistency(self, n, radius):
        """Strips are subsets of the disk and contain its outer rim."""
        grid = Grid(n, SPACE)
        offsets = grid.disk_offsets(radius)
        for direction, strip in grid.dilation_strips(radius).items():
            assert strip <= offsets
            shifted_out = {
                off for off in offsets
                if (off[0] - direction[0], off[1] - direction[1]) not in offsets
            }
            assert strip == shifted_out


class TestZOrderBitmapComposition:
    @given(
        cells=st.sets(
            st.tuples(st.integers(0, 63), st.integers(0, 63)), max_size=60
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_zorder_wah_roundtrip(self, cells):
        """The exact pipeline a safe region travels through on the wire."""
        positions = [interleave(i, j) for (i, j) in cells]
        bitmap = WAHBitmap.from_positions(positions, 64 * 64)
        decoded = {deinterleave(p) for p in bitmap.positions()}
        assert decoded == cells


class TestCostModelScaling:
    @given(
        scale=st.floats(min_value=0.1, max_value=10),
        d=st.floats(min_value=1, max_value=10_000),
        speed=st.floats(min_value=0.1, max_value=200),
        ne=st.integers(min_value=1, max_value=100),
    )
    def test_balance_scale_invariance(self, scale, d, speed, ne):
        """bm is invariant when f and n scale together (Equation 6)."""
        base = CostModel(SystemStats(event_rate=2.0, total_events=1_000))
        scaled = CostModel(
            SystemStats(event_rate=2.0 * scale, total_events=int(1_000 * scale))
        )
        a = base.balance(d, speed, ne)
        b = scaled.balance(d, speed, ne)
        assert math.isclose(a, b, rel_tol=0.01)
