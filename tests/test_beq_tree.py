"""BEQ-Tree specifics: Algorithm 2 internals, tree maintenance (Appendix C),
the spatial-interval bounds of Figure 5, and the on-demand matching mode."""

from __future__ import annotations

import math
import random

import pytest

from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Circle, Point, Rect
from repro.index import BEQTree, circle_rect_boundary_intersections

from conftest import random_events

SPACE = Rect(0, 0, 10_000, 10_000)


class TestBoundaryIntersections:
    def test_circle_crossing_one_edge(self):
        circle = Circle(Point(-3, 5), 5.0)
        rect = Rect(0, 0, 10, 10)
        points = circle_rect_boundary_intersections(circle, rect)
        assert len(points) == 2
        for p in points:
            assert math.isclose(circle.center.distance_to(p), 5.0)
            assert p.x == 0.0

    def test_disjoint_circle_no_intersections(self):
        circle = Circle(Point(-100, -100), 5.0)
        assert circle_rect_boundary_intersections(circle, Rect(0, 0, 10, 10)) == []

    def test_circle_inside_rect_no_intersections(self):
        circle = Circle(Point(5, 5), 1.0)
        assert circle_rect_boundary_intersections(circle, Rect(0, 0, 10, 10)) == []

    def test_intersections_lie_on_circle_and_rect_boundary(self):
        circle = Circle(Point(12, 5), 6.0)
        rect = Rect(0, 0, 10, 10)
        for p in circle_rect_boundary_intersections(circle, rect):
            assert math.isclose(circle.center.distance_to(p), 6.0, abs_tol=1e-9)
            on_edge = (
                math.isclose(p.x, 0) or math.isclose(p.x, 10)
                or math.isclose(p.y, 0) or math.isclose(p.y, 10)
            )
            assert on_edge and rect.contains_point(p)


class TestTreeStructure:
    def test_split_on_overflow(self):
        tree = BEQTree(SPACE, emax=4)
        events = random_events(random.Random(0), SPACE, 40)
        tree.insert_all(events)
        assert tree.depth() > 1
        for leaf in tree.leaves():
            assert len(leaf) <= 4 or tree.depth() >= tree.max_depth

    def test_leaves_partition_events(self):
        tree = BEQTree(SPACE, emax=8)
        events = random_events(random.Random(1), SPACE, 100)
        tree.insert_all(events)
        seen = [e for leaf in tree.leaves() for e in leaf.events]
        assert sorted(seen) == sorted(range(100))

    def test_merge_on_empty_siblings(self):
        tree = BEQTree(SPACE, emax=2)
        events = random_events(random.Random(2), SPACE, 30)
        tree.insert_all(events)
        assert tree.depth() > 1
        for event in events:
            tree.delete(event)
        assert tree.depth() == 1
        assert len(tree) == 0

    def test_out_of_bounds_insert_rejected(self):
        tree = BEQTree(SPACE, emax=4)
        with pytest.raises(ValueError):
            tree.insert(Event(1, {"a": 1}, Point(-5, 0)))

    def test_max_depth_bounds_colocation(self):
        tree = BEQTree(SPACE, emax=2, max_depth=5)
        # 20 events at the same location would split forever without the cap.
        for event_id in range(20):
            tree.insert(Event(event_id, {"a": 1}, Point(123.0, 456.0)))
        assert tree.depth() <= 5
        assert len(tree) == 20


class TestSpatialList:
    def test_spatial_list_sorted_by_reference_distance(self):
        tree = BEQTree(SPACE, emax=64)
        events = random_events(random.Random(3), SPACE, 50)
        tree.insert_all(events)
        for leaf in tree.leaves():
            values = leaf.spatial.values()
            assert values == sorted(values)
            for distance, event_id in leaf.spatial:
                actual = leaf.reference.distance_to(leaf.events[event_id].location)
                assert math.isclose(distance, actual)


class TestOnDemandMatching:
    def test_be_match_in_rect_covers_rect_events(self):
        tree = BEQTree(SPACE, emax=8)
        events = random_events(random.Random(4), SPACE, 200)
        tree.insert_all(events)
        expr = BooleanExpression([Predicate("a1", Operator.LE, 5)])
        rect = Rect(2000, 2000, 6000, 6000)
        got_ids = {e.event_id for e in tree.be_match_in_rect(expr, rect)}
        # every be-matching event inside the rect must be found (the leaf
        # granularity may also return matches just outside the rect)
        for event in events:
            if expr.matches(event.attributes) and rect.contains_point(event.location):
                assert event.event_id in got_ids

    def test_be_match_full_space(self):
        tree = BEQTree(SPACE, emax=8)
        events = random_events(random.Random(5), SPACE, 200)
        tree.insert_all(events)
        expr = BooleanExpression([Predicate("a2", Operator.GE, 3)])
        got = {e.event_id for e in tree.be_match(expr)}
        expected = {e.event_id for e in events if expr.matches(e.attributes)}
        assert got == expected

    def test_be_candidates_superset_of_matches(self):
        tree = BEQTree(SPACE, emax=8)
        events = random_events(random.Random(6), SPACE, 200)
        tree.insert_all(events)
        sub = Subscription(
            1, BooleanExpression([Predicate("a1", Operator.LE, 7)]), radius=2000
        )
        at = Point(5000, 5000)
        matches = {e.event_id for e in tree.match(sub, at)}
        candidates = {e.event_id for e in tree.be_candidates(sub, at)}
        assert matches <= candidates


class TestUpdateCostShape:
    def test_deeper_trees_make_insertion_slower_not_wrong(self):
        """Fig 11 shape precondition: the tree stays correct through heavy
        insert/delete churn."""
        tree = BEQTree(SPACE, emax=4)
        rng = random.Random(7)
        alive = {}
        next_id = 0
        for round_ in range(10):
            batch = random_events(rng, SPACE, 30)
            for event in batch:
                renumbered = Event(next_id, dict(event.attributes), event.location)
                tree.insert(renumbered)
                alive[next_id] = renumbered
                next_id += 1
            for event_id in list(alive)[:10]:
                tree.delete(alive.pop(event_id))
        assert len(tree) == len(alive)
        expr = BooleanExpression([Predicate("a0", Operator.GE, 0)])
        got = {e.event_id for e in tree.be_match(expr)}
        expected = {i for i, e in alive.items() if expr.matches(e.attributes)}
        assert got == expected


class TestMemoryStats:
    def test_counts_are_consistent(self):
        tree = BEQTree(SPACE, emax=8)
        events = random_events(random.Random(8), SPACE, 150)
        tree.insert_all(events)
        stats = tree.memory_stats()
        assert stats["events"] == 150
        assert stats["spatial_entries"] == 150  # one iDistance entry per event
        # one tuple entry per attribute-value pair (Appendix C: O(|T|))
        assert stats["tuple_entries"] == sum(len(e) for e in events)
        assert stats["leaves"] >= 1
        assert stats["depth"] == tree.depth()

    def test_stats_shrink_after_deletion(self):
        tree = BEQTree(SPACE, emax=8)
        events = random_events(random.Random(9), SPACE, 100)
        tree.insert_all(events)
        before = tree.memory_stats()
        for event in events[:50]:
            tree.delete(event)
        after = tree.memory_stats()
        assert after["events"] == 50
        assert after["tuple_entries"] < before["tuple_entries"]
        assert after["spatial_entries"] == 50
