"""Safe/impact region semantics: the paper's Lemmas 1-4, the complement
representation, and the Appendix B wire encoding."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    ConstructionRequest,
    GridRegion,
    IGM,
    ImpactRegion,
    SafeRegion,
    StaticMatchingField,
    SystemStats,
    impact_from_safe,
)
from repro.geometry import Grid, Point, Rect

from conftest import make_subscription

RADIUS = 700.0


@pytest.fixture
def small_grid():
    return Grid(30, Rect(0, 0, 6000, 6000))


class TestGridRegion:
    def test_membership_direct(self, small_grid):
        region = GridRegion.of(small_grid, [(1, 1), (2, 2)])
        assert region.covers_cell((1, 1))
        assert not region.covers_cell((3, 3))

    def test_membership_complement(self, small_grid):
        region = GridRegion.of(small_grid, [(1, 1)], complement=True)
        assert not region.covers_cell((1, 1))
        assert region.covers_cell((3, 3))
        assert not region.covers_cell((-1, 0))  # out of bounds is never covered

    def test_contains_point(self, small_grid):
        region = GridRegion.of(small_grid, [small_grid.cell_of(Point(3000, 3000))])
        assert region.contains_point(Point(3000, 3000))
        assert not region.contains_point(Point(100, 100))

    def test_area_cells(self, small_grid):
        assert GridRegion.of(small_grid, [(0, 0), (1, 1)]).area_cells() == 2
        total = small_grid.n * small_grid.n
        assert GridRegion.of(small_grid, [(0, 0)], complement=True).area_cells() == total - 1
        assert GridRegion.whole_space(small_grid).area_cells() == total
        assert GridRegion.empty(small_grid).is_empty()

    def test_iter_cells_complement(self, small_grid):
        region = GridRegion.of(small_grid, [(0, 0)], complement=True)
        cells = set(region.iter_cells())
        assert (0, 0) not in cells
        assert len(cells) == small_grid.n * small_grid.n - 1

    def test_bitmap_roundtrip(self, small_grid):
        rng = random.Random(1)
        cells = {(rng.randrange(30), rng.randrange(30)) for _ in range(50)}
        region = GridRegion.of(small_grid, cells)
        bitmap = region.to_bitmap()
        from repro.geometry import deinterleave

        decoded = {deinterleave(position) for position in bitmap.positions()}
        assert decoded == cells

    def test_encoded_bytes_positive(self, small_grid):
        region = GridRegion.of(small_grid, [(1, 1)])
        assert region.encoded_bytes() > 0


class TestImpactFromSafe:
    def test_direct_dilation_matches_brute_force(self, small_grid):
        safe = SafeRegion.of(small_grid, [(10, 10), (11, 10), (10, 11)])
        impact = impact_from_safe(safe, RADIUS)
        for cell in small_grid.all_cells():
            expected = any(
                small_grid.min_distance_cell_cell(cell, member) < RADIUS
                for member in safe.cells
            )
            assert impact.covers_cell(cell) == expected

    def test_complement_dilation_matches_direct(self, small_grid):
        """GM path: dilating a complement region must equal dilating the
        materialised cell set."""
        rng = random.Random(3)
        excluded = {(rng.randrange(30), rng.randrange(30)) for _ in range(250)}
        safe_complement = SafeRegion.of(small_grid, excluded, complement=True)
        safe_direct = SafeRegion.of(
            small_grid,
            [c for c in small_grid.all_cells() if c not in excluded],
        )
        impact_a = impact_from_safe(safe_complement, RADIUS)
        impact_b = impact_from_safe(safe_direct, RADIUS)
        for cell in small_grid.all_cells():
            assert impact_a.covers_cell(cell) == impact_b.covers_cell(cell)

    def test_lemma2_safe_subset_of_impact(self, small_grid):
        safe = SafeRegion.of(small_grid, [(5, 5), (5, 6)])
        impact = impact_from_safe(safe, RADIUS)
        for cell in safe.cells:
            assert impact.covers_cell(cell)

    def test_lemma3_monotone_in_safe_region(self, small_grid):
        smaller = SafeRegion.of(small_grid, [(5, 5)])
        larger = SafeRegion.of(small_grid, [(5, 5), (6, 5), (7, 5)])
        impact_small = impact_from_safe(smaller, RADIUS)
        impact_large = impact_from_safe(larger, RADIUS)
        for cell in impact_small.cells:
            assert impact_large.covers_cell(cell)


class TestConstructedRegionLemmas:
    """Lemmas 1 and 4 on regions produced by an actual construction."""

    def _construct(self, small_grid, events, at=Point(3000, 3000)):
        field = StaticMatchingField(small_grid, events)
        request = ConstructionRequest(
            location=at,
            velocity=Point(40, 10),
            radius=RADIUS,
            grid=small_grid,
            matching_field=field,
            stats=SystemStats(event_rate=1.0, total_events=200),
        )
        return IGM().construct(request)

    def test_lemma1_notification_circle_inside_impact(self, small_grid):
        rng = random.Random(9)
        events = [Point(rng.uniform(0, 6000), rng.uniform(0, 6000)) for _ in range(12)]
        at = Point(3000, 3000)
        pair = self._construct(small_grid, events, at)
        if pair.safe.is_empty():
            pytest.skip("degenerate start cell")
        # Lemma 1: while the subscriber is inside R, the circle cells are in I.
        for cell in small_grid.cells_intersecting_circle(
            make_subscription(1, RADIUS).notification_region(at)
        ):
            assert pair.impact.covers_cell(cell)

    def test_lemma4_no_matching_event_strictly_inside_impact(self, small_grid):
        """Matching events may touch boundary impact *cells* (the grid
        over-approximates), but never lie within the true impact region:
        every matching event is > r away from every safe-region point."""
        rng = random.Random(10)
        events = [Point(rng.uniform(0, 6000), rng.uniform(0, 6000)) for _ in range(12)]
        pair = self._construct(small_grid, events)
        for event in events:
            for cell in pair.safe.cells:
                assert small_grid.cell_rect(cell).min_distance_to_point(event) > RADIUS
