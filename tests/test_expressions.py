"""Expression substrate tests: predicates, boolean expressions, events,
subscriptions and the three match definitions."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Point


class TestPredicate:
    @pytest.mark.parametrize(
        "op,operand,value,expected",
        [
            (Operator.EQ, 5, 5, True),
            (Operator.EQ, 5, 6, False),
            (Operator.NE, 5, 6, True),
            (Operator.NE, 5, 5, False),
            (Operator.LT, 5, 4, True),
            (Operator.LT, 5, 5, False),
            (Operator.LE, 5, 5, True),
            (Operator.LE, 5, 6, False),
            (Operator.GT, 5, 6, True),
            (Operator.GT, 5, 5, False),
            (Operator.GE, 5, 5, True),
            (Operator.GE, 5, 4, False),
            (Operator.BETWEEN, (2, 5), 2, True),
            (Operator.BETWEEN, (2, 5), 5, True),
            (Operator.BETWEEN, (2, 5), 6, False),
            (Operator.IN, frozenset({1, 3}), 3, True),
            (Operator.IN, frozenset({1, 3}), 2, False),
            (Operator.NOT_IN, frozenset({1, 3}), 2, True),
            (Operator.NOT_IN, frozenset({1, 3}), 3, False),
        ],
    )
    def test_operator_semantics(self, op, operand, value, expected):
        assert Predicate("a", op, operand).matches(value) is expected

    def test_string_equality(self):
        assert Predicate("brand", Operator.EQ, "samsung").matches("samsung")
        assert not Predicate("brand", Operator.EQ, "samsung").matches("sony")

    def test_between_requires_pair(self):
        with pytest.raises(ValueError):
            Predicate("a", Operator.BETWEEN, 5)

    def test_between_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            Predicate("a", Operator.BETWEEN, (5, 2))

    def test_in_normalises_iterables(self):
        predicate = Predicate("a", Operator.IN, [1, 2, 2])
        assert isinstance(predicate.operand, frozenset)
        assert predicate.matches(2)

    def test_scalar_operator_rejects_collections(self):
        with pytest.raises(ValueError):
            Predicate("a", Operator.LT, (1, 2))

    def test_is_equality_and_is_range(self):
        assert Predicate("a", Operator.EQ, 1).is_equality()
        assert Predicate("a", Operator.GE, 1).is_range()
        assert Predicate("a", Operator.BETWEEN, (1, 2)).is_range()
        assert not Predicate("a", Operator.IN, {1}).is_range()

    def test_str_rendering(self):
        assert str(Predicate("price", Operator.LT, 1000)) == "price < 1000"
        assert "in [2, 5]" in str(Predicate("size", Operator.BETWEEN, (2, 5)))

    @given(value=st.integers(), operand=st.integers())
    def test_lt_ge_partition(self, value, operand):
        lt = Predicate("a", Operator.LT, operand).matches(value)
        ge = Predicate("a", Operator.GE, operand).matches(value)
        assert lt != ge


class TestBooleanExpression:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BooleanExpression([])

    def test_conjunction_semantics(self):
        expr = BooleanExpression(
            [Predicate("a", Operator.GE, 2), Predicate("b", Operator.EQ, 1)]
        )
        assert expr.matches({"a": 3, "b": 1})
        assert not expr.matches({"a": 1, "b": 1})
        assert not expr.matches({"a": 3, "b": 2})

    def test_missing_attribute_fails(self):
        expr = BooleanExpression([Predicate("a", Operator.GE, 2)])
        assert not expr.matches({"b": 5})

    def test_extra_event_attributes_ignored(self):
        expr = BooleanExpression([Predicate("a", Operator.GE, 2)])
        assert expr.matches({"a": 3, "noise": "x"})

    def test_size_and_attributes(self):
        expr = BooleanExpression(
            [Predicate("a", Operator.GE, 2), Predicate("a", Operator.LE, 8)]
        )
        assert len(expr) == 2
        assert expr.attributes == frozenset({"a"})

    def test_two_predicates_same_attribute(self):
        expr = BooleanExpression(
            [Predicate("a", Operator.GE, 2), Predicate("a", Operator.LE, 8)]
        )
        assert expr.matches({"a": 5})
        assert not expr.matches({"a": 9})


class TestEvent:
    def test_requires_attributes(self):
        with pytest.raises(ValueError):
            Event(1, {}, Point(0, 0))

    def test_attributes_frozen(self):
        event = Event(1, {"a": 1}, Point(0, 0))
        with pytest.raises(TypeError):
            event.attributes["a"] = 2  # type: ignore[index]

    def test_size_is_tuple_count(self):
        assert len(Event(1, {"a": 1, "b": 2}, Point(0, 0))) == 2

    def test_expiry_before_arrival_rejected(self):
        with pytest.raises(ValueError):
            Event(1, {"a": 1}, Point(0, 0), arrived_at=10, expires_at=5)

    def test_is_expired(self):
        event = Event(1, {"a": 1}, Point(0, 0), arrived_at=0, expires_at=10)
        assert not event.is_expired(9)
        assert event.is_expired(10)

    def test_never_expires(self):
        assert not Event(1, {"a": 1}, Point(0, 0)).is_expired(10**9)

    def test_identity_by_id(self):
        a = Event(1, {"a": 1}, Point(0, 0))
        b = Event(1, {"b": 9}, Point(5, 5))
        assert a == b
        assert hash(a) == hash(b)


class TestSubscription:
    def test_positive_radius_required(self):
        with pytest.raises(ValueError):
            Subscription(1, BooleanExpression([Predicate("a", Operator.EQ, 1)]), 0)

    def test_match_definitions(self):
        sub = Subscription(
            1,
            BooleanExpression([Predicate("a", Operator.EQ, 1)]),
            radius=100.0,
        )
        near_match = Event(1, {"a": 1}, Point(50, 0))
        far_match = Event(2, {"a": 1}, Point(500, 0))
        near_mismatch = Event(3, {"a": 2}, Point(50, 0))
        at = Point(0, 0)
        assert sub.be_matches(near_match) and sub.spatial_matches(near_match, at)
        assert sub.matches(near_match, at)
        assert sub.be_matches(far_match) and not sub.matches(far_match, at)
        assert not sub.be_matches(near_mismatch) and not sub.matches(near_mismatch, at)

    def test_spatial_match_boundary_inclusive(self):
        sub = Subscription(
            1, BooleanExpression([Predicate("a", Operator.EQ, 1)]), radius=100.0
        )
        assert sub.spatial_matches(Event(1, {"a": 1}, Point(100, 0)), Point(0, 0))

    def test_notification_region(self):
        sub = Subscription(
            1, BooleanExpression([Predicate("a", Operator.EQ, 1)]), radius=100.0
        )
        region = sub.notification_region(Point(3, 4))
        assert region.center == Point(3, 4)
        assert region.radius == 100.0
