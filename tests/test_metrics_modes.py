"""CommunicationStats byte-measurement modes and report completeness.

Byte measurement is OFF by default (``measure_bytes=False``): the wire
counters stay 0 *by design*, and ``bytes_measured`` records which case a
report is looking at — "measured zero" and "never measured" must not be
confusable.  Both modes are exercised against a real workload, and the
dataclass-driven ``as_dict``/``merged_with`` are held to covering every
counter, so a newly added field (like the batch counters) can never be
silently dropped from reports or merges again.
"""

from __future__ import annotations

from dataclasses import fields

from repro.core import IGM
from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree
from repro.system import ServerConfig, CommunicationStats, ElapsServer

SPACE = Rect(0, 0, 10_000, 10_000)


def run_workload(measure_bytes: bool, repair: bool = False) -> ElapsServer:
    server = ElapsServer(
        Grid(40, SPACE),
        IGM(max_cells=400),
        ServerConfig(initial_rate=1.0, measure_bytes=measure_bytes, repair=repair),
        event_index=BEQTree(SPACE, emax=32))
    sub = Subscription(
        1,
        BooleanExpression([Predicate("topic", Operator.EQ, "sale")]),
        radius=1_500.0,
    )
    server.subscribe(sub, Point(5_000, 5_000), Point(20, 0), now=0)
    server.publish(Event(1, {"topic": "sale"}, Point(5_100, 5_000), arrived_at=1), now=1)
    server.publish_batch(
        [
            Event(2, {"topic": "sale"}, Point(5_200, 5_000), arrived_at=2),
            Event(3, {"topic": "rain"}, Point(5_300, 5_000), arrived_at=2),
        ],
        now=2,
    )
    server.report_location(1, Point(5_400, 5_000), Point(20, 0), now=3)
    # a matching event inside the impact region but outside the radius:
    # the out-of-radius type-II hit (rebuild, or repair when enabled)
    server.publish(Event(4, {"topic": "sale"}, Point(7_600, 5_000), arrived_at=4), now=4)
    return server


class TestModes:
    def test_default_mode_measures_nothing_and_says_so(self):
        metrics = run_workload(measure_bytes=False).metrics
        assert metrics.bytes_measured is False
        assert metrics.wire_bytes_up == 0
        assert metrics.wire_bytes_down == 0
        assert metrics.safe_region_bytes == 0
        assert metrics.raw_region_bytes == 0
        # the workload itself still happened
        assert metrics.notifications > 0
        assert metrics.batches == 1

    def test_measured_mode_accounts_every_direction(self):
        metrics = run_workload(measure_bytes=True).metrics
        assert metrics.bytes_measured is True
        assert metrics.wire_bytes_up > 0      # subscribe + reports
        assert metrics.wire_bytes_down > 0    # pushes + notifications
        assert metrics.safe_region_bytes > 0  # compressed region payloads
        assert metrics.raw_region_bytes >= metrics.safe_region_bytes

    def test_both_modes_agree_on_communication_rounds(self):
        """Measurement is observational: it never changes behaviour."""
        off = run_workload(measure_bytes=False).metrics.as_dict()
        on = run_workload(measure_bytes=True).metrics.as_dict()
        byte_fields = {
            "bytes_measured",
            "wire_bytes_up",
            "wire_bytes_down",
            "safe_region_bytes",
            "raw_region_bytes",
            "delta_region_bytes",
            "server_seconds",
        }
        for name, value in off.items():
            if name not in byte_fields:
                assert on[name] == value, name

    def test_measurement_is_observational_under_repair_too(self):
        off = run_workload(measure_bytes=False, repair=True).metrics
        on = run_workload(measure_bytes=True, repair=True).metrics
        assert off.repairs == on.repairs
        assert off.repair_fallbacks == on.repair_fallbacks
        assert off.total_rounds == on.total_rounds
        assert off.delta_region_bytes == 0  # off by design when unmeasured


class TestReportCompleteness:
    def test_as_dict_covers_every_field(self):
        stats = CommunicationStats()
        assert set(stats.as_dict()) == {f.name for f in fields(CommunicationStats)}

    def test_as_dict_includes_batch_counters(self):
        report = run_workload(measure_bytes=False).metrics.as_dict()
        for key in ("batches", "batch_events", "leaf_probes_saved", "cache_hits"):
            assert key in report
        assert report["batches"] == 1
        assert report["batch_events"] == 2

    def test_as_dict_includes_repair_counters(self):
        """A repair workload's counters survive into the report.

        The dataclass-driven as_dict picks new fields up automatically;
        this pins the three repair counters by name so a rename or an
        accidental property-isation (properties are not fields) shows up.
        """
        report = run_workload(measure_bytes=True, repair=True).metrics.as_dict()
        for key in ("repairs", "repair_fallbacks", "delta_region_bytes"):
            assert key in report
        # the workload's out-of-radius type-II hit was repaired, not rebuilt
        assert report["repairs"] >= 1
        assert report["delta_region_bytes"] > 0

    def test_per_subscriber_includes_repairs_and_batches(self):
        """A repair-mode run must be distinguishable from rebuild-mode
        when only the per-subscriber view is reported."""
        metrics = run_workload(measure_bytes=False, repair=True).metrics
        per = metrics.per_subscriber(1)
        assert per["repairs"] == metrics.repairs >= 1
        assert per["batches"] == metrics.batches == 1

    def test_per_subscriber_divides_by_population(self):
        metrics = run_workload(measure_bytes=False).metrics
        per = metrics.per_subscriber(4)
        assert per["notifications"] == metrics.notifications / 4
        assert per["batches"] == metrics.batches / 4

    def test_reports_jointly_cover_every_counter(self):
        """Every field surfaces in at least one reporting view.

        ``as_dict`` covers all of them by construction; this pins the
        *union* so the guarantee survives even if as_dict ever becomes
        selective, and documents which fields the per-subscriber view is
        expected to carry.
        """
        stats = CommunicationStats()
        exposed = set(stats.as_dict()) | set(stats.per_subscriber(1))
        assert {f.name for f in fields(CommunicationStats)} <= exposed
        # the per-subscriber view itself carries the paper's headline
        # series plus the repair/batch counters the figures comment on
        assert {"location_update", "event_arrival", "total", "notifications",
                "repairs", "batches"} <= set(stats.per_subscriber(1))

    def test_write_timeouts_field_merges_and_reports(self):
        a = CommunicationStats(write_timeouts=2)
        b = CommunicationStats(write_timeouts=3)
        assert a.merged_with(b).write_timeouts == 5
        assert a.as_dict()["write_timeouts"] == 2

    def test_merge_sums_every_counter_and_ors_the_flag(self):
        a = run_workload(measure_bytes=False).metrics
        b = run_workload(measure_bytes=True).metrics
        merged = a.merged_with(b)
        assert merged.bytes_measured is True
        for f in fields(CommunicationStats):
            if f.name == "bytes_measured":
                continue
            assert getattr(merged, f.name) == getattr(a, f.name) + getattr(b, f.name), f.name
        # inputs untouched
        assert a.bytes_measured is False
        assert a.batches == 1
