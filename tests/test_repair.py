"""Incremental safe-region repair (repair mode) and its fallback budget.

The tentpole contract: an out-of-radius type-II hit carves the event's
dilation out of the cached safe region instead of re-running the
construction strategy, ships only the removed cells, and leaves the
impact region installed (it remains a covering superset, Definition 2).
The :class:`~repro.core.RepairBudget` bounds the drift; past it the
server falls back to a full construction, exactly the always-rebuild
behaviour repair mode is measured against.
"""

from __future__ import annotations

import pytest

from repro.core import IGM, RegionDelta, RepairBudget, SafeRegion
from repro.core.field import dilate_point
from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree
from repro.system import CallbackTransport, ServerConfig, ElapsServer

SPACE = Rect(0, 0, 10_000, 10_000)


def make_server(strategy=None, **config_fields):
    return ElapsServer(
        Grid(40, SPACE),
        strategy or IGM(max_cells=400),
        ServerConfig(initial_rate=1.0, **config_fields),
        event_index=BEQTree(SPACE, emax=32))


def make_sub(sub_id=1, radius=1500.0):
    return Subscription(
        sub_id,
        BooleanExpression([Predicate("topic", Operator.EQ, "sale")]),
        radius=radius,
    )


def sale(event_id, x, y):
    return Event(event_id, {"topic": "sale"}, Point(x, y))


class TestRepairBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            RepairBudget(max_removed_fraction=0.0)
        with pytest.raises(ValueError):
            RepairBudget(max_removed_fraction=1.5)
        with pytest.raises(ValueError):
            RepairBudget(bm_slack=0.5)

    def test_empty_region_always_rebuilds(self):
        budget = RepairBudget()
        assert budget.rebuild_reason(
            live_cells=0, cells_at_build=10, removed_since_build=10, beta=1.0
        ) == "empty"

    def test_removed_fraction_trigger(self):
        budget = RepairBudget(max_removed_fraction=0.35)
        common = dict(live_cells=50, cells_at_build=100, beta=1.0)
        assert budget.rebuild_reason(removed_since_build=35, **common) is None
        assert (
            budget.rebuild_reason(removed_since_build=36, **common)
            == "removed_fraction"
        )

    def test_balance_drift_trigger(self):
        # bm scales linearly in ne: bm_at_build * (ne_estimate / ne_at_build)
        budget = RepairBudget(bm_slack=4.0)
        common = dict(
            live_cells=90,
            cells_at_build=100,
            removed_since_build=5,
            beta=1.0,
            bm_at_build=0.9,
            ne_at_build=10,
        )
        assert budget.rebuild_reason(ne_estimate=40, **common) is None  # bm~3.6
        assert budget.rebuild_reason(ne_estimate=50, **common) == "balance"

    def test_no_bm_information_never_trips_balance(self):
        budget = RepairBudget()
        assert budget.rebuild_reason(
            live_cells=90,
            cells_at_build=100,
            removed_since_build=5,
            beta=1.0,
            bm_at_build=None,
            ne_at_build=0,
            ne_estimate=100,
        ) is None


class TestRepairPath:
    def repair_server(self, **kwargs):
        server = make_server(repair=True, **kwargs)
        sub = make_sub()
        server.subscribe(sub, Point(5_000, 5_000), Point(20, 0), now=0)
        server.transport = CallbackTransport(
            locate=lambda sub_id: (Point(5_000, 5_000), Point(20, 0)))
        return server, sub

    def test_out_of_radius_hit_repairs_instead_of_rebuilding(self):
        server, sub = self.repair_server()
        record = server.subscribers[sub.sub_id]
        built = server.metrics.constructions
        before = record.safe
        event = sale(10, 7_600, 5_000)  # inside impact, outside radius
        assert server.publish(event, now=1) == []
        assert server.metrics.constructions == built  # no reconstruction
        assert server.metrics.repairs == 1
        assert server.metrics.repair_fallbacks == 0
        # the repaired region is exactly the old one minus the dilation
        unsafe = set()
        dilate_point(server.grid, event.location, sub.radius, unsafe)
        assert record.safe.cells == before.cells - unsafe
        assert record.safe.cells < before.cells  # something was carved

    def test_repaired_region_excludes_every_cell_near_the_event(self):
        server, sub = self.repair_server()
        record = server.subscribers[sub.sub_id]
        event = sale(10, 7_600, 5_000)
        server.publish(event, now=1)
        for cell in record.safe.cells:
            distance = server.grid.cell_rect(cell).min_distance_to_point(event.location)
            assert distance > sub.radius

    def test_impact_region_stays_installed_across_repairs(self):
        server, sub = self.repair_server()
        installed = server.impact_index._by_subscriber[sub.sub_id]
        server.publish(sale(10, 7_600, 5_000), now=1)
        assert server.impact_index._by_subscriber[sub.sub_id] is installed
        # and it still covers the (shrunken) safe region's dilation: the
        # repaired region is a subset of the built one, so the covering
        # property is inherited — spot-check every live cell is covered
        for cell in server.subscribers[sub.sub_id].safe.cells:
            assert cell in installed

    def test_repair_ships_through_the_region_sink_without_a_delta_sink(self):
        server, sub = self.repair_server()
        shipped = []
        server.transport = CallbackTransport(
            ship_region=lambda sub_id, region: shipped.append(region))
        server.publish(sale(10, 7_600, 5_000), now=1)
        assert len(shipped) == 1
        assert shipped[0] is server.subscribers[sub.sub_id].safe

    def test_delta_sink_takes_precedence_and_applies_cleanly(self):
        server, sub = self.repair_server()
        record = server.subscribers[sub.sub_id]
        before = record.safe
        pushes, deltas = [], []
        server.transport = CallbackTransport(
            ship_region=lambda sub_id, region: pushes.append(region),
            ship_delta=lambda sub_id, removed, region: deltas.append(removed))
        server.publish(sale(10, 7_600, 5_000), now=1)
        assert pushes == []
        assert len(deltas) == 1
        # client-side application reproduces the server's repaired region
        applied = RegionDelta.of(server.grid, deltas[0]).apply_to(before)
        assert applied.cells == record.safe.cells
        # and the WAH identity holds bitmap-for-bitmap
        delta_bitmap = RegionDelta.of(server.grid, deltas[0]).to_bitmap()
        assert before.to_bitmap().difference(delta_bitmap) == record.safe.to_bitmap()

    def test_miss_ships_nothing(self):
        """A dilation that misses the region entirely moves zero bytes."""
        from repro.system.protocol import LocationPing, LocationReport, message_bytes

        server, sub = self.repair_server(measure_bytes=True)
        shipped = []
        server.transport = CallbackTransport(
            ship_region=lambda sub_id, region: shipped.append(region))
        # repeating the location: the second carve only covers territory
        # the first already removed, so nothing ships beyond the ping round
        event = sale(10, 7_600, 5_000)
        server.publish(event, now=1)
        shipped.clear()
        down_after_first = server.metrics.wire_bytes_down
        delta_bytes_after_first = server.metrics.delta_region_bytes
        server.publish(sale(11, 7_600, 5_000), now=2)
        assert server.metrics.repairs == 2
        assert shipped == []  # second carve removed nothing
        assert server.metrics.delta_region_bytes == delta_bytes_after_first
        assert server.metrics.wire_bytes_down == down_after_first + message_bytes(
            LocationPing(sub.sub_id)
        )

    def test_budget_exhaustion_falls_back_to_full_construction(self):
        server, sub = self.repair_server(
            repair_budget=RepairBudget(max_removed_fraction=0.01)
        )
        built = server.metrics.constructions
        server.publish(sale(10, 7_600, 5_000), now=1)
        assert server.metrics.repairs == 0
        assert server.metrics.repair_fallbacks == 1
        assert server.metrics.constructions == built + 1
        # the fallback construction re-arms repair state
        assert server.subscribers[sub.sub_id].repair is not None

    def test_batch_repairs_once_per_subscriber(self):
        # a generous budget: three carves remove a lot of the region, and
        # this test is about batching, not about the fallback triggers
        server, sub = self.repair_server(
            repair_budget=RepairBudget(max_removed_fraction=1.0)
        )
        built = server.metrics.constructions
        burst = [sale(10, 7_600, 5_000), sale(11, 7_700, 5_200), sale(12, 2_400, 5_000)]
        server.publish_batch(burst, now=1)
        assert server.metrics.constructions == built
        assert server.metrics.repairs == 1  # one carve covers the burst
        record = server.subscribers[sub.sub_id]
        for event in burst:
            unsafe = set()
            dilate_point(server.grid, event.location, sub.radius, unsafe)
            assert not (record.safe.cells & unsafe)

    def test_repair_off_by_default(self):
        server = make_server()
        assert server.repair is False
        sub = make_sub()
        server.subscribe(sub, Point(5_000, 5_000), Point(20, 0), now=0)
        server.transport = CallbackTransport(
            locate=lambda sub_id: (Point(5_000, 5_000), Point(20, 0)))
        built = server.metrics.constructions
        server.publish(sale(10, 7_600, 5_000), now=1)
        assert server.metrics.constructions == built + 1
        assert server.metrics.repairs == 0
        assert server.metrics.repair_fallbacks == 0


class TestCachedFastPathAccounting:
    """The cached-region fast path (GM + cached matching) must stay on
    the books: its elapsed time lands in ``server_seconds`` and, under
    repair, drift bookkeeping restarts with the re-shipped pair.  The
    original early return skipped both."""

    def cached_server(self, **kwargs):
        from repro.core import GridMethod

        server = make_server(
            strategy=GridMethod(), matching_mode="cached", **kwargs
        )
        sub = make_sub()
        server.subscribe(sub, Point(5_000, 5_000), Point(20, 0), now=0)
        server.transport = CallbackTransport(
            locate=lambda sub_id: (Point(5_000, 5_000), Point(20, 0)))
        return server, sub

    def test_fast_path_reuses_the_cached_pair(self):
        server, sub = self.cached_server()
        built = server.metrics.constructions
        _, region = server.report_location(
            sub.sub_id, Point(5_200, 5_000), Point(20, 0), now=1
        )
        assert server.metrics.constructions == built  # re-shipped, not rebuilt
        assert region.cells == server.subscribers[sub.sub_id].safe.cells

    def test_fast_path_contributes_to_server_seconds(self):
        server, sub = self.cached_server()
        before = server.metrics.server_seconds
        server.report_location(sub.sub_id, Point(5_200, 5_000), Point(20, 0), now=1)
        assert server.metrics.server_seconds > before

    def test_fast_path_restarts_repair_bookkeeping(self):
        server, sub = self.cached_server(repair=True)
        record = server.subscribers[sub.sub_id]
        built = server.metrics.constructions
        # an out-of-radius type-II hit with a TTL: the repair carves the
        # region and the cached-matching signature gains the event...
        event = Event(
            10, {"topic": "sale"}, Point(7_600, 5_000), arrived_at=1, expires_at=2
        )
        assert server.publish(event, now=1) == []
        assert server.metrics.repairs == 1
        drifted = record.repair
        assert drifted.removed_since_build >= 1
        # ...and the expiry reverts the signature to the subscribe-time
        # one, so the next report takes the cached fast path
        server.expire_due_events(3)
        seconds_before = server.metrics.server_seconds
        server.report_location(sub.sub_id, Point(5_200, 5_000), Point(20, 0), now=4)
        assert server.metrics.constructions == built  # the fast path hit
        assert server.metrics.server_seconds > seconds_before
        # the re-ship handed the client the full cached region, so the
        # drift bookkeeping must restart from that pair — stale carve
        # counts would skew the repair budget against a region the
        # client no longer holds
        assert record.repair is not drifted
        assert record.repair.removed_since_build == 0
        assert record.repair.pair.safe is record.safe


class TestFieldReuse:
    """The per-subscriber LazyBEQField surviving across constructions."""

    def test_field_cached_in_repair_ondemand_mode(self):
        server = make_server(repair=True)
        sub = make_sub()
        server.subscribe(sub, Point(5_000, 5_000), Point(20, 0), now=0)
        field = server._lazy_fields.get(sub.sub_id)
        assert field is not None
        record = server.subscribers[sub.sub_id]
        assert server._matching_field(record) is field

    def test_no_cache_without_repair(self):
        server = make_server()
        sub = make_sub()
        server.subscribe(sub, Point(5_000, 5_000), Point(20, 0), now=0)
        assert server._lazy_fields == {}

    def test_cached_field_learns_new_events_outside_scanned_leaves(self):
        """A reused field must see events published after its leaf scans.

        This is the correctness half of reuse: scanned BEQ leaves are
        never revisited, so without the note_event feed a later
        construction would run on a stale corpus and could emit an
        invalid (too large) region.
        """
        server = make_server(repair=True)
        sub = make_sub()
        server.subscribe(sub, Point(5_000, 5_000), Point(20, 0), now=0)
        server.transport = CallbackTransport(
            locate=lambda sub_id: (Point(5_000, 5_000), Point(20, 0)))
        # outside the impact region: no communication, but the cached
        # field is fed so the event constrains the next construction
        far = sale(10, 500, 500)
        server.publish(far, now=1)
        field = server._lazy_fields[sub.sub_id]
        assert far.event_id in field._seen_ids
        # force a reconstruction via a location report near the event
        notifications, region = server.report_location(
            sub.sub_id, Point(1_600, 1_600), Point(20, 0), now=2
        )
        assert notifications == []  # still out of radius
        for cell in region.cells:
            assert (
                server.grid.cell_rect(cell).min_distance_to_point(far.location)
                > sub.radius
            )

    def test_staleness_retires_the_field(self):
        server = make_server(repair=True)
        sub = make_sub()
        server.subscribe(sub, Point(5_000, 5_000), Point(20, 0), now=0)
        field = server._lazy_fields[sub.sub_id]
        field.stale_exclusions = 10_000  # exceed any threshold
        assert field.too_stale()
        record = server.subscribers[sub.sub_id]
        fresh = server._matching_field(record)
        assert fresh is not field
        assert server._lazy_fields[sub.sub_id] is fresh

    def test_expiry_marks_seen_events_stale(self):
        server = make_server(repair=True)
        sub = make_sub()
        server.subscribe(sub, Point(5_000, 5_000), Point(20, 0), now=0)
        server.transport = CallbackTransport(
            locate=lambda sub_id: (Point(5_000, 5_000), Point(20, 0)))
        doomed = Event(
            10, {"topic": "sale"}, Point(7_600, 5_000), arrived_at=1, expires_at=3
        )
        server.publish(doomed, now=1)
        field = server._lazy_fields[sub.sub_id]
        assert doomed.event_id in field._seen_ids
        before = field.stale_exclusions
        server.expire_due_events(now=5)
        assert field.stale_exclusions == before + 1

    def test_resync_drops_the_cached_field(self):
        server = make_server(repair=True)
        sub = make_sub()
        server.subscribe(sub, Point(5_000, 5_000), Point(20, 0), now=0)
        assert sub.sub_id in server._lazy_fields
        server.resync(sub.sub_id, Point(5_000, 5_000), Point(20, 0), (), now=1)
        field = server._lazy_fields[sub.sub_id]
        # the fresh field shares the record's (rebound) delivered set
        assert field._excluded is server.subscribers[sub.sub_id].delivered

    def test_resync_retires_every_derived_matching_artefact(self):
        """Resync rebinds ``delivered`` to a fresh set; every cache keyed
        on (or carrying drift from) the old one must be retired, not just
        the lazy field: the cached-mode field/region caches and the
        repair drift state all reference the pre-reconnect world."""
        server = make_server(repair=True)
        sub = make_sub()
        server.subscribe(sub, Point(5_000, 5_000), Point(20, 0), now=0)
        server.transport = CallbackTransport(
            locate=lambda sub_id: (Point(5_000, 5_000), Point(20, 0)))
        record = server.subscribers[sub.sub_id]
        # accumulate drift: one carve leaves removed_since_build > 0
        server.publish(sale(10, 7_600, 5_000), now=1)
        assert record.repair is not None
        assert record.repair.removed_since_build > 0
        # seed the signature caches with entries for the old delivered set
        server._field_cache[sub.sub_id] = ("stale", object())
        server._region_cache[sub.sub_id] = ("stale", object())

        server.resync(sub.sub_id, Point(5_000, 5_000), Point(20, 0), (10,), now=2)

        assert server._field_cache.get(sub.sub_id, (None,))[0] != "stale"
        assert server._region_cache.get(sub.sub_id, (None,))[0] != "stale"
        # the post-resync construction installed *fresh* drift state
        assert record.repair is not None
        assert record.repair.removed_since_build == 0
        # and a post-resync carve works against the fresh region
        before = record.safe
        server.publish(sale(11, 7_600, 5_000), now=3)
        assert record.safe.cells < before.cells


class TestRecoveryNeverRestoresDerivedState:
    """DESIGN.md §13's recovery invariant: snapshots persist only ground
    truth — lazy fields, cached matching artefacts and repair drift are
    derived, never restored, so the first post-restart type-II event
    falls back to a full construction instead of carving against state
    from the previous incarnation."""

    def journaled_server(self, path):
        from repro.system.journal import JournalSpec

        return make_server(repair=True, journal=JournalSpec(str(path)))

    def test_first_type_ii_after_recovery_is_a_construction_fallback(self, tmp_path):
        server = self.journaled_server(tmp_path)
        sub = make_sub()
        server.subscribe(sub, Point(5_000, 5_000), Point(20, 0), now=0)
        # live drift before the crash: one successful carve
        server.transport = CallbackTransport(
            locate=lambda sub_id: (Point(5_000, 5_000), Point(20, 0)))
        server.publish(sale(10, 7_600, 5_000), now=1)
        assert server.subscribers[sub.sub_id].repair is not None
        server.snapshot()
        server.close()

        revived = self.journaled_server(tmp_path)
        revived.recover()
        record = revived.subscribers[sub.sub_id]
        assert record.repair is None          # drift did not survive the image
        assert sub.sub_id not in revived._lazy_fields
        assert sub.sub_id not in revived._field_cache
        assert sub.sub_id not in revived._region_cache
        assert record.safe is not None        # ...but the region itself did

        fallbacks = revived.metrics.repair_fallbacks
        repairs = revived.metrics.repairs
        revived.publish(sale(11, 7_600, 5_000), now=2)
        assert revived.metrics.repair_fallbacks == fallbacks + 1
        assert revived.metrics.repairs == repairs  # no carve against old state
        # the fallback construction re-armed repair with fresh drift state
        assert record.repair is not None
        assert record.repair.removed_since_build == 0
        revived.close()


class TestDegenerateConstruction:
    """The Lemma-1 fallback: an empty safe region still needs an impact
    region covering the subscriber's notification circle."""

    def degenerate_server(self):
        server = make_server()
        sub = make_sub()
        # matching, undelivered (outside the radius), but so close that
        # its dilation swallows the subscriber's own cell: the expansion
        # rejects the start cell and the safe region comes out empty
        server.bootstrap([sale(1, 5_000 + 1_600, 5_000)])
        _, region = server.subscribe(sub, Point(5_000, 5_000), Point(20, 0), now=0)
        return server, sub, region

    def test_empty_region_installs_the_dilated_subscriber_cell(self):
        server, sub, region = self.degenerate_server()
        assert region.is_empty()
        record = server.subscribers[sub.sub_id]
        cell = server.grid.cell_of(record.location)
        expected = set(
            server.grid.cells_within_radius(cell, sub.radius, inclusive=True)
        )
        expected.add(cell)
        assert server.impact_index._by_subscriber[sub.sub_id] == frozenset(expected)

    def test_degenerate_impact_still_catches_deliverable_events(self):
        server, sub, _ = self.degenerate_server()
        server.transport = CallbackTransport(
            locate=lambda sub_id: (Point(5_000, 5_000), Point(20, 0)))
        # an event inside the notification circle must reach the client
        # even though the safe region is empty (Lemma 1's whole point)
        notifications = server.publish(sale(2, 5_400, 5_000), now=1)
        assert [n.event.event_id for n in notifications] == [2]

    def test_repair_on_empty_region_falls_back(self):
        server = make_server(repair=True)
        sub = make_sub()
        server.bootstrap([sale(1, 5_000 + 1_600, 5_000)])
        _, region = server.subscribe(sub, Point(5_000, 5_000), Point(20, 0), now=0)
        assert region.is_empty()
        server.transport = CallbackTransport(
            locate=lambda sub_id: (Point(5_000, 5_000), Point(20, 0)))
        built = server.metrics.constructions
        server.publish(sale(2, 6_700, 5_000), now=1)  # in impact, out of radius
        assert server.metrics.repairs == 0
        assert server.metrics.repair_fallbacks == 1
        assert server.metrics.constructions == built + 1
