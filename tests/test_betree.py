"""BETreeIndex: the BE-Tree-style subscription index must agree with the
other two subscription indexes on every workload."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import IGM
from repro.expressions import (
    BooleanExpression,
    DnfExpression,
    Event,
    Operator,
    Predicate,
    Subscription,
)
from repro.geometry import Grid, Point, Rect
from repro.index.betree import BETreeIndex, predicate_interval
from repro.index import KSubscriptionIndex, SubscriptionIndex
from repro.system import ServerConfig, ElapsServer


def make_sub(sub_id, *predicates, radius=1000.0):
    return Subscription(sub_id, BooleanExpression(predicates), radius)


class TestPredicateInterval:
    @pytest.mark.parametrize(
        "op,operand,expected",
        [
            (Operator.EQ, 5, (5.0, 5.0)),
            (Operator.LE, 5, (float("-inf"), 5.0)),
            (Operator.LT, 5, (float("-inf"), 5.0)),
            (Operator.GE, 5, (5.0, float("inf"))),
            (Operator.BETWEEN, (2, 7), (2.0, 7.0)),
        ],
    )
    def test_interval_shapes(self, op, operand, expected):
        assert predicate_interval(Predicate("a", op, operand)) == expected

    def test_non_interval_predicates(self):
        assert predicate_interval(Predicate("a", Operator.NE, 5)) is None
        assert predicate_interval(Predicate("a", Operator.IN, frozenset({1}))) is None
        assert predicate_interval(Predicate("a", Operator.EQ, "text")) is None


class TestBETreeBasics:
    def test_invalid_bucket_size_rejected(self):
        with pytest.raises(ValueError):
            BETreeIndex(max_bucket=0)

    def test_match_after_splits(self):
        index = BETreeIndex(max_bucket=2)
        for sub_id in range(40):
            index.insert(
                make_sub(
                    sub_id,
                    Predicate("price", Operator.LE, sub_id * 10),
                    Predicate("brand", Operator.EQ, f"b{sub_id % 4}"),
                )
            )
        assert index.node_count() > 1  # partitioning actually happened
        event = Event(1, {"price": 95, "brand": "b1"}, Point(0, 0))
        expected = {
            sub_id for sub_id in range(40)
            if 95 <= sub_id * 10 and sub_id % 4 == 1
        }
        assert {s.sub_id for s in index.match_event(event)} == expected

    def test_string_predicates_route_through_open_buckets(self):
        index = BETreeIndex(max_bucket=1)
        index.insert(make_sub(1, Predicate("name", Operator.EQ, "shoes")))
        index.insert(make_sub(2, Predicate("name", Operator.EQ, "books")))
        index.insert(make_sub(3, Predicate("name", Operator.NE, "shoes")))
        matched = {s.sub_id for s in index.match_event(Event(1, {"name": "shoes"}, Point(0, 0)))}
        assert matched == {1}

    def test_delete_roundtrip(self):
        index = BETreeIndex(max_bucket=2)
        subs = [
            make_sub(i, Predicate("a", Operator.LE, i), Predicate("b", Operator.GE, i))
            for i in range(20)
        ]
        for sub in subs:
            index.insert(sub)
        for sub in subs[::2]:
            index.delete(sub)
        assert len(index) == 10
        event = Event(1, {"a": 0, "b": 100}, Point(0, 0))
        assert {s.sub_id for s in index.match_event(event)} == set(range(1, 20, 2))

    def test_delete_unknown_raises(self):
        with pytest.raises(KeyError):
            BETreeIndex().delete(make_sub(5, Predicate("a", Operator.EQ, 1)))

    def test_duplicate_insert_rejected(self):
        index = BETreeIndex()
        index.insert(make_sub(1, Predicate("a", Operator.EQ, 1)))
        with pytest.raises(ValueError):
            index.insert(make_sub(1, Predicate("a", Operator.EQ, 2)))

    def test_late_insert_outside_cluster_range(self):
        """Entries whose operand lies outside the directory's clustering
        range must still be found (they fall to the open bucket)."""
        index = BETreeIndex(max_bucket=2)
        for sub_id in range(6):
            index.insert(make_sub(sub_id, Predicate("x", Operator.EQ, sub_id)))
        index.insert(make_sub(99, Predicate("x", Operator.EQ, -1000)))
        matched = {s.sub_id for s in index.match_event(Event(1, {"x": -1000}, Point(0, 0)))}
        assert matched == {99}

    def test_dnf_reported_once(self):
        index = BETreeIndex(max_bucket=2)
        dnf = DnfExpression([
            BooleanExpression([Predicate("a", Operator.GE, 0)]),
            BooleanExpression([Predicate("a", Operator.GE, 1)]),
        ])
        index.insert(Subscription(1, dnf, 500.0))
        matched = index.match_event(Event(1, {"a": 5}, Point(0, 0)))
        assert [s.sub_id for s in matched] == [1]


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_property_all_three_subscription_indexes_agree(data):
    rng = random.Random(data.draw(st.integers(0, 99999)))
    indexes = [BETreeIndex(max_bucket=3), SubscriptionIndex(), KSubscriptionIndex()]
    subs = []
    for sub_id in range(data.draw(st.integers(1, 30))):
        predicates = []
        for _ in range(rng.randint(1, 3)):
            attr = f"a{rng.randint(0, 4)}"
            op = rng.choice(
                [Operator.EQ, Operator.NE, Operator.LT, Operator.LE,
                 Operator.GT, Operator.GE, Operator.BETWEEN]
            )
            if op is Operator.BETWEEN:
                low = rng.randint(0, 8)
                operand = (low, low + rng.randint(0, 4))
            else:
                operand = rng.randint(0, 9)
            predicates.append(Predicate(attr, op, operand))
        sub = Subscription(sub_id, BooleanExpression(predicates), 1000.0)
        subs.append(sub)
        for index in indexes:
            index.insert(sub)
    for _ in range(10):
        attrs = {f"a{rng.randint(0, 4)}": rng.randint(0, 9) for _ in range(rng.randint(1, 5))}
        event = Event(0, attrs, Point(0, 0))
        expected = {s.sub_id for s in subs if s.be_matches(event)}
        for index in indexes:
            assert {s.sub_id for s in index.match_event(event)} == expected


class TestServerOnBETree:
    def test_end_to_end(self):
        space = Rect(0, 0, 10_000, 10_000)
        server = ElapsServer(
            Grid(40, space),
            IGM(max_cells=300),
            ServerConfig(initial_rate=1.0),
            subscription_index=BETreeIndex(max_bucket=4))
        sub = make_sub(1, Predicate("topic", Operator.EQ, "sale"), radius=1500.0)
        server.subscribe(sub, Point(5000, 5000), Point(40, 0))
        notifications = server.publish(
            Event(10, {"topic": "sale"}, Point(5100, 5000)), now=1
        )
        assert [n.sub_id for n in notifications] == [1]
