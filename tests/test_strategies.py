"""The four safe-region strategies: safety invariants, Algorithm 1
behaviours, Example 2's incremental impact expansion, and the cost-model
responses the evaluation relies on."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ConstructionRequest,
    GridMethod,
    IDGM,
    IGM,
    StaticMatchingField,
    SystemStats,
    VoronoiMethod,
)
from repro.geometry import Grid, Point, Rect

SPACE = Rect(0, 0, 10_000, 10_000)
RADIUS = 800.0


def request_for(grid, events, *, at=Point(5000, 5000), velocity=Point(40, 15),
                rate=2.0, total=500, radius=RADIUS):
    return ConstructionRequest(
        location=at,
        velocity=velocity,
        radius=radius,
        grid=grid,
        matching_field=StaticMatchingField(grid, events),
        stats=SystemStats(event_rate=rate, total_events=total),
    )


@pytest.fixture
def grid():
    return Grid(50, SPACE)


@pytest.fixture
def events():
    rng = random.Random(13)
    return [Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000)) for _ in range(25)]


ALL_STRATEGIES = [IGM(), IDGM(), VoronoiMethod(), GridMethod()]


class TestSafetyInvariants:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
    def test_every_safe_cell_is_truly_safe(self, grid, events, strategy):
        pair = strategy.construct(request_for(grid, events))
        for cell in pair.safe.iter_cells():
            rect = grid.cell_rect(cell)
            for event in events:
                assert rect.min_distance_to_point(event) > RADIUS

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
    def test_safe_region_inside_impact_region(self, grid, events, strategy):
        pair = strategy.construct(request_for(grid, events))
        for cell in pair.safe.iter_cells():
            assert pair.impact.covers_cell(cell)

    @pytest.mark.parametrize("strategy", [IGM(), IDGM(), VoronoiMethod()], ids=lambda s: s.name)
    def test_impact_is_exact_dilation(self, grid, events, strategy):
        pair = strategy.construct(request_for(grid, events))
        expected = grid.dilate(set(pair.safe.cells), RADIUS)
        assert set(pair.impact.cells) == expected

    @pytest.mark.parametrize("strategy", [IGM(), IDGM(), VoronoiMethod()], ids=lambda s: s.name)
    def test_region_contains_subscriber_when_nonempty(self, grid, events, strategy):
        request = request_for(grid, events)
        pair = strategy.construct(request)
        if not pair.safe.is_empty():
            assert pair.safe.contains_point(request.location)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
    def test_unsafe_start_yields_region_excluding_subscriber(self, grid, strategy):
        at = Point(5000, 5000)
        events = [Point(5000 + RADIUS / 2, 5000)]  # the start cell is unsafe
        pair = strategy.construct(request_for(grid, events, at=at))
        assert not pair.safe.contains_point(at)


class TestIGMBehaviour:
    def test_no_events_fills_reachable_space(self, grid):
        pair = IGM().construct(request_for(grid, []))
        assert pair.safe.area_cells() == grid.n * grid.n

    def test_max_cells_cap_respected(self, grid):
        pair = IGM(max_cells=40).construct(request_for(grid, []))
        assert pair.safe.area_cells() == 40

    def test_higher_event_rate_shrinks_region(self, grid, events):
        sizes = [
            IGM().construct(request_for(grid, events, rate=rate)).safe.area_cells()
            for rate in (0.5, 4.0, 32.0)
        ]
        assert sizes[0] >= sizes[1] >= sizes[2]
        assert sizes[0] > sizes[2]

    def test_higher_speed_grows_region(self, grid, events):
        slow = IGM().construct(
            request_for(grid, events, velocity=Point(10, 0))
        ).safe.area_cells()
        fast = IGM().construct(
            request_for(grid, events, velocity=Point(200, 0))
        ).safe.area_cells()
        assert fast >= slow

    def test_beta_monotone_region_growth(self, grid, events):
        sizes = [
            IGM(beta=beta).construct(request_for(grid, events, rate=8.0)).safe.area_cells()
            for beta in (0.01, 1.0, 100.0)
        ]
        assert sizes[0] <= sizes[1] <= sizes[2]

    def test_alpha_zero_idgm_equals_igm(self, grid, events):
        request = request_for(grid, events, rate=8.0)
        igm_pair = IGM().construct(request)
        idgm_pair = IDGM(alpha=0.0).construct(request)
        assert set(igm_pair.safe.cells) == set(idgm_pair.safe.cells)

    def test_idgm_elongates_along_direction(self, grid, events):
        """With full direction weight the region reaches farther along the
        motion vector than against it."""
        at = Point(5000, 5000)
        request = request_for(grid, events, at=at, velocity=Point(100, 0), rate=16.0, total=200)
        pair = IDGM(alpha=0.9).construct(request)
        if pair.safe.is_empty():
            pytest.skip("degenerate world")
        centers = [grid.cell_center(c) for c in pair.safe.cells]
        ahead = max((c.x - at.x) for c in centers)
        behind = max((at.x - c.x) for c in centers)
        assert ahead >= behind

    def test_alpha_range_validated(self):
        with pytest.raises(ValueError):
            IDGM(alpha=1.5)
        with pytest.raises(ValueError):
            IGM(beta=0.0)

    def test_region_connected(self, grid, events):
        pair = IGM().construct(request_for(grid, events, rate=8.0))
        cells = set(pair.safe.cells)
        if not cells:
            pytest.skip("empty region")
        start = next(iter(cells))
        seen = {start}
        stack = [start]
        while stack:
            i, j = stack.pop()
            for di in (-1, 0, 1):
                for dj in (-1, 0, 1):
                    neighbor = (i + di, j + dj)
                    if neighbor in cells and neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
        assert seen == cells


class TestVM:
    def test_region_confined_to_voronoi_cell_of_nearest(self, grid, events):
        request = request_for(grid, events)
        pair = VoronoiMethod().construct(request)
        nearest = min(events, key=request.location.distance_to)
        for cell in pair.safe.cells:
            center = grid.cell_center(cell)
            if cell == grid.cell_of(request.location):
                continue
            best = min(center.distance_to(e) for e in events)
            assert center.distance_to(nearest) <= best + 1e-6

    def test_no_events_degenerates_to_whole_space(self, grid):
        pair = VoronoiMethod().construct(request_for(grid, []))
        assert pair.safe.area_cells() == grid.n * grid.n

    def test_max_cells_cap(self, grid, events):
        pair = VoronoiMethod(max_cells=10).construct(request_for(grid, events))
        assert pair.safe.area_cells() <= 10


class TestGM:
    def test_region_is_every_safe_cell(self, grid, events):
        pair = GridMethod().construct(request_for(grid, events))
        for cell in grid.all_cells():
            rect = grid.cell_rect(cell)
            truly_safe = all(rect.min_distance_to_point(e) > RADIUS for e in events)
            assert pair.safe.covers_cell(cell) == truly_safe

    def test_gm_is_location_independent(self, grid, events):
        a = GridMethod().construct(request_for(grid, events, at=Point(1000, 1000)))
        b = GridMethod().construct(request_for(grid, events, at=Point(9000, 9000)))
        assert set(a.safe.iter_cells()) == set(b.safe.iter_cells())

    def test_gm_largest_region(self, grid, events):
        request = request_for(grid, events)
        gm_area = GridMethod().construct(request).safe.area_cells()
        for strategy in (IGM(), IDGM(), VoronoiMethod()):
            assert strategy.construct(request).safe.area_cells() <= gm_area


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_property_safety_across_random_worlds(data):
    """Whatever the world, no strategy ever marks an unsafe cell safe."""
    rng = random.Random(data.draw(st.integers(0, 9999)))
    grid = Grid(30, SPACE)
    events = [
        Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000))
        for _ in range(data.draw(st.integers(0, 20)))
    ]
    request = request_for(
        grid,
        events,
        at=Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000)),
        rate=data.draw(st.floats(0.0, 20.0)),
        radius=data.draw(st.floats(200.0, 2000.0)),
    )
    strategy = data.draw(st.sampled_from(ALL_STRATEGIES))
    pair = strategy.construct(request)
    for cell in pair.safe.iter_cells():
        rect = grid.cell_rect(cell)
        for event in events:
            assert rect.min_distance_to_point(event) > request.radius
