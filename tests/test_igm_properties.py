"""Metamorphic properties of iGM/idGM construction (Algorithm 1).

Three families, each stated at the strongest level that actually holds:

* **Soundness** (exact, per instance): the impact region is precisely the
  safe region dilated by the notification radius (Definition 2); the safe
  region never contains an unsafe cell; a non-empty safe region contains
  the subscriber's own cell.

* **Balance-ratio straddle** (exact, per instance): the ``bm`` of the
  last accepted cell is ``<= beta`` and the ``bm`` of the first rejected
  cell is ``> beta`` — the expansion stops exactly where Lemmas 5-7 place
  the optimum (``beta = 1``).

* **Density monotonicity** (two levels): per instance, *emptiness* is
  monotone — if the expansion cannot leave the start cell at density k,
  it cannot at any higher density (the start-cell decision is
  path-independent, ``bm`` scales linearly with ``ne``).  Region *area*
  is only monotone in aggregate and only in the moderate-density regime:
  a fixed panel of workloads must show non-increasing mean area along a
  1x..8x density chain.  End-to-end per-instance area is **provably not
  monotone** — at extreme density the expansion rejects every
  event-touching cell, ``ne`` stays 0, and the region balloons through
  the event-free space (U-shaped area/density curve; faithful to the
  ``min(ts, ti)`` objective, verified empirically while writing this
  suite) — so no test asserts that.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    GridMethod,
    IDGM,
    IGM,
    VectorizedIDGM,
    VectorizedIGM,
    VoronoiMethod,
)
from repro.core.construction import ConstructionRequest
from repro.core.cost_model import CostModel, SystemStats
from repro.core.field import StaticMatchingField
from repro.geometry import Grid, Point, Rect

SPACE = Rect(0, 0, 10_000, 10_000)
GRID = Grid(25, SPACE)

#: every incremental construction core; the metamorphic properties hold for
#: the scalar oracles and their vectorized twins alike
INCREMENTAL = {
    "iGM": IGM,
    "idGM": IDGM,
    "iGM-vec": VectorizedIGM,
    "idGM-vec": VectorizedIDGM,
}


def random_request(seed: int, density: int = 1, event_count: int = None):
    """A seeded construction request with ``density`` copies of each event."""
    rng = random.Random(seed)
    count = event_count if event_count is not None else rng.randint(5, 50)
    points = [
        Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000)) for _ in range(count)
    ]
    location = Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000))
    velocity = Point(rng.uniform(-40, 40), rng.uniform(-40, 40))
    radius = rng.uniform(400, 2500)
    stats = SystemStats(event_rate=rng.uniform(0.5, 8), total_events=200)
    return ConstructionRequest(
        location=location,
        velocity=velocity,
        radius=radius,
        grid=GRID,
        matching_field=StaticMatchingField(GRID, points * density),
        stats=stats,
    )


# ----------------------------------------------------------------------
# Soundness
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**20), strategy_name=st.sampled_from(sorted(INCREMENTAL)))
def test_impact_is_exact_dilation_of_safe(seed, strategy_name):
    """Definition 2 on the nose: impact == dilate(safe, r).

    The incremental strip optimisation (Example 2) must neither miss a
    dilation cell nor add one the full-disk rescan would not.
    """
    strategy = INCREMENTAL[strategy_name](max_cells=400)
    request = random_request(seed)
    pair = strategy.construct(request)
    dilated = frozenset(GRID.dilate(pair.safe.cells, request.radius))
    assert pair.impact.cells == dilated
    assert pair.safe.cells <= pair.impact.cells or pair.safe.is_empty()


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**20), strategy_name=st.sampled_from(sorted(INCREMENTAL)))
def test_safe_region_avoids_unsafe_cells_and_anchors_at_subscriber(seed, strategy_name):
    request = random_request(seed)
    pair = INCREMENTAL[strategy_name](max_cells=400).construct(request)
    unsafe = request.matching_field.unsafe_cells(request.radius)
    assert not (pair.safe.cells & unsafe)
    if not pair.safe.is_empty():
        assert pair.safe.covers_cell(GRID.cell_of(request.location))


@pytest.mark.parametrize("strategy_name", sorted(INCREMENTAL))
def test_strip_ablation_agrees_with_full_rescan(strategy_name):
    """incremental_impact=False is the oracle for the Example 2 strips."""
    cls = INCREMENTAL[strategy_name]
    for seed in range(25):
        request = random_request(seed)
        fast = cls(max_cells=300).construct(request)
        slow = cls(max_cells=300, incremental_impact=False).construct(request)
        assert fast.safe.cells == slow.safe.cells
        assert fast.impact.cells == slow.impact.cells


# ----------------------------------------------------------------------
# Balance-ratio straddle
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    beta=st.sampled_from([0.25, 0.5, 1.0, 2.0, 4.0]),
    strategy_name=st.sampled_from(sorted(INCREMENTAL)),
)
def test_bm_straddles_beta_at_the_stopping_cell(seed, beta, strategy_name):
    strategy = INCREMENTAL[strategy_name](beta=beta)
    pair = strategy.construct(random_request(seed))
    if pair.last_accepted_bm is not None:
        assert pair.last_accepted_bm <= beta
    if pair.first_rejected_bm is not None:
        assert pair.first_rejected_bm > beta
    if pair.last_accepted_bm is not None and pair.first_rejected_bm is not None:
        assert pair.last_accepted_bm <= beta < pair.first_rejected_bm


def test_bm_diagnostics_are_informative_not_vacuous():
    """On a large seed panel both sides of the straddle must show up."""
    informative = 0
    for seed in range(60):
        pair = IGM().construct(random_request(seed))
        if pair.last_accepted_bm is not None and pair.first_rejected_bm is not None:
            informative += 1
    # 10/60 on this panel: most uncapped runs either cover the whole
    # space (nothing rejected) or never leave the start cell (nothing
    # accepted); what matters is that the straddle assertions above are
    # exercised on a guaranteed, deterministic subset.
    assert informative >= 8


def test_non_incremental_strategies_leave_bm_unset():
    request = random_request(3)
    for strategy in (VoronoiMethod(), GridMethod()):
        pair = strategy.construct(request)
        assert pair.last_accepted_bm is None
        assert pair.first_rejected_bm is None


# ----------------------------------------------------------------------
# Density monotonicity
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**20), strategy_name=st.sampled_from(["iGM", "iGM-vec"]))
def test_emptiness_is_monotone_in_density(seed, strategy_name):
    """Once the expansion cannot start, more density never revives it."""
    was_empty = False
    for density in (1, 2, 4, 8, 16, 64):
        pair = INCREMENTAL[strategy_name](max_cells=400).construct(
            random_request(seed, density=density)
        )
        if was_empty:
            assert pair.safe.is_empty(), density
        was_empty = pair.safe.is_empty()


@pytest.mark.parametrize("strategy_name", sorted(INCREMENTAL))
def test_mean_area_shrinks_with_density(strategy_name):
    """The paper's macroscopic claim, on a fixed 40-workload panel.

    Mean safe-region area is non-increasing along a 1x..8x density chain
    (the moderate regime; see the module docstring for why the chain
    stops at 8x and why this is an aggregate, not per-instance, claim).
    """
    chain = (1, 2, 4, 8)
    means = []
    for density in chain:
        total = 0
        for seed in range(40):
            rng = random.Random(seed)
            location = Point(rng.uniform(3000, 7000), rng.uniform(3000, 7000))
            radius = rng.uniform(400, 1200)
            clear = radius + rng.uniform(800, 2500)
            base = []
            while len(base) < 40:
                p = Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000))
                if p.distance_to(location) > clear:
                    base.append(p)
            velocity = Point(rng.uniform(-30, 30), rng.uniform(-30, 30))
            request = ConstructionRequest(
                location=location,
                velocity=velocity,
                radius=radius,
                grid=GRID,
                matching_field=StaticMatchingField(GRID, base * density),
                stats=SystemStats(event_rate=2.0, total_events=1000),
            )
            strategy = INCREMENTAL[strategy_name](max_cells=400)
            total += strategy.construct(request).safe.area_cells()
        means.append(total / 40)
    assert all(a >= b for a, b in zip(means, means[1:])), means


@settings(max_examples=100, deadline=None)
@given(
    distance=st.floats(0, 20_000),
    speed=st.floats(0.1, 100),
    ne=st.integers(0, 1_000),
    extra=st.integers(1, 1_000),
    rate=st.floats(0.1, 10),
    total=st.integers(1, 10_000),
)
def test_balance_ratio_is_monotone_in_matching_count(
    distance, speed, ne, extra, rate, total
):
    """Equation 6 itself: bm never decreases when ne grows."""
    model = CostModel(SystemStats(event_rate=rate, total_events=total))
    assert model.balance(distance, speed, ne + extra) >= model.balance(
        distance, speed, ne
    )
