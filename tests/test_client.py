"""The mobile client state machine."""

from __future__ import annotations

import pytest

from repro.core import SafeRegion
from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.system import MobileClient


@pytest.fixture
def grid():
    return Grid(10, Rect(0, 0, 1000, 1000))


def make_client():
    subscription = Subscription(
        1, BooleanExpression([Predicate("a", Operator.EQ, 1)]), radius=100.0
    )
    return MobileClient(subscription, Point(50, 50), Point(10, 0))


class TestReporting:
    def test_reports_without_region(self):
        client = make_client()
        assert client.must_report()
        assert client.move_to(Point(60, 50), Point(10, 0))

    def test_reports_with_empty_region(self, grid):
        client = make_client()
        client.receive_region(SafeRegion.empty(grid))
        assert client.must_report()

    def test_silent_inside_region(self, grid):
        client = make_client()
        client.receive_region(SafeRegion.of(grid, [grid.cell_of(Point(60, 50))]))
        assert not client.move_to(Point(60, 50), Point(10, 0))

    def test_reports_after_leaving_region(self, grid):
        client = make_client()
        client.receive_region(SafeRegion.of(grid, [grid.cell_of(Point(50, 50))]))
        assert not client.move_to(Point(55, 55), Point(10, 0))
        assert client.move_to(Point(500, 500), Point(10, 0))

    def test_report_counts_and_payload(self):
        client = make_client()
        client.move_to(Point(70, 50), Point(20, 0))
        location, velocity = client.report()
        assert location == Point(70, 50)
        assert velocity == Point(20, 0)
        assert client.reports_sent == 1

    def test_complement_region_membership(self, grid):
        client = make_client()
        excluded = grid.cell_of(Point(900, 900))
        client.receive_region(SafeRegion.of(grid, [excluded], complement=True))
        assert not client.move_to(Point(100, 100), Point(1, 0))
        assert client.move_to(Point(900, 900), Point(1, 0))


class TestPushes:
    def test_region_replacement(self, grid):
        client = make_client()
        first = SafeRegion.of(grid, [(0, 0)])
        second = SafeRegion.of(grid, [(5, 5)])
        client.receive_region(first)
        client.receive_region(second)
        assert client.safe_region is second

    def test_notifications_accumulate(self):
        client = make_client()
        event = Event(9, {"a": 1}, Point(10, 10))
        client.receive_notification(event)
        assert client.received_events == [event]

    def test_answer_ping_returns_current_state(self):
        client = make_client()
        client.move_to(Point(33, 44), Point(5, 6))
        assert client.answer_ping() == (Point(33, 44), Point(5, 6))


class TestRegionDeltas:
    def test_delta_shrinks_the_held_region(self, grid):
        client = make_client()
        client.receive_region(SafeRegion.of(grid, [(0, 0), (0, 1), (1, 0)]))
        assert client.apply_region_delta({(0, 1), (1, 0)})
        assert client.safe_region.cells == frozenset({(0, 0)})
        assert isinstance(client.safe_region, SafeRegion)

    def test_delta_without_region_is_discarded(self):
        client = make_client()
        assert not client.apply_region_delta({(0, 0)})
        assert client.safe_region is None
        assert client.must_report()  # region-less clients keep reporting

    def test_delta_can_force_a_report(self, grid):
        # the carved cell is the one the client stands in: the repaired
        # region no longer contains it, exactly as a rebuild would decide
        client = make_client()
        cell = grid.cell_of(Point(50, 50))
        client.receive_region(SafeRegion.of(grid, [cell, (5, 5)]))
        assert not client.must_report()
        client.apply_region_delta({cell})
        assert client.must_report()

    def test_delta_on_complement_region(self, grid):
        client = make_client()
        client.receive_region(SafeRegion.of(grid, [(9, 9)], complement=True))
        client.apply_region_delta({(0, 0), (9, 9)})
        assert client.safe_region.complement
        assert not client.safe_region.covers_cell((0, 0))
        assert client.safe_region.covers_cell((1, 1))
