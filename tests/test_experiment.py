"""The experiment runner and metrics plumbing."""

from __future__ import annotations

import pytest

from repro.core import (
    GridMethod,
    IDGM,
    IGM,
    VectorizedIDGM,
    VectorizedIGM,
    VoronoiMethod,
)
from repro.system import CommunicationStats, ExperimentConfig, build_strategy
from repro.system.experiment import STRATEGIES


class TestBuildStrategy:
    def test_registry_covers_every_method(self):
        assert set(STRATEGIES) == {
            "VM", "GM", "iGM", "idGM", "iGM-vec", "idGM-vec"
        }

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("VM", VoronoiMethod),
            ("GM", GridMethod),
            ("iGM", IGM),
            ("idGM", IDGM),
            ("iGM-vec", VectorizedIGM),
            ("idGM-vec", VectorizedIDGM),
        ],
    )
    def test_builds_the_right_class(self, name, cls):
        strategy = build_strategy(ExperimentConfig(strategy=name))
        assert isinstance(strategy, cls)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            build_strategy(ExperimentConfig(strategy="???"))

    def test_beta_override_reaches_igm(self):
        strategy = build_strategy(ExperimentConfig(strategy="iGM", beta=0.5))
        assert strategy.beta == 0.5

    def test_alpha_override_reaches_idgm(self):
        strategy = build_strategy(ExperimentConfig(strategy="idGM", alpha=0.9))
        assert strategy.alpha == 0.9

    def test_incremental_impact_override(self):
        strategy = build_strategy(
            ExperimentConfig(strategy="iGM", incremental_impact=False)
        )
        assert strategy.incremental_impact is False

    def test_max_cells_flows_through(self):
        strategy = build_strategy(ExperimentConfig(strategy="iGM", max_cells=77))
        assert strategy.max_cells == 77

    def test_defaults_have_no_overrides(self):
        strategy = build_strategy(ExperimentConfig(strategy="idGM"))
        assert strategy.alpha == 0.5
        assert strategy.beta == 1.0


class TestConfig:
    def test_with_replaces_fields(self):
        config = ExperimentConfig()
        changed = config.with_(event_rate=99.0, subscribers=3)
        assert changed.event_rate == 99.0
        assert changed.subscribers == 3
        assert config.event_rate != 99.0  # the original is untouched

    def test_defaults_mirror_table2(self):
        config = ExperimentConfig()
        assert config.speed == 60.0
        assert config.radius == 3_000.0
        assert config.subscription_size == 3


class TestCommunicationStats:
    def test_total_rounds(self):
        stats = CommunicationStats(location_update_rounds=3, event_arrival_rounds=4)
        assert stats.total_rounds == 7

    def test_per_subscriber(self):
        stats = CommunicationStats(
            location_update_rounds=10, event_arrival_rounds=6, notifications=4,
            repairs=8, batches=2,
        )
        per = stats.per_subscriber(2)
        assert per == {
            "location_update": 5.0,
            "event_arrival": 3.0,
            "total": 8.0,
            "notifications": 2.0,
            "repairs": 4.0,
            "batches": 1.0,
        }

    def test_per_subscriber_rejects_zero(self):
        with pytest.raises(ValueError):
            CommunicationStats().per_subscriber(0)

    def test_merged_with(self):
        a = CommunicationStats(location_update_rounds=1, notifications=2,
                               server_seconds=0.5, wire_bytes_up=10)
        b = CommunicationStats(location_update_rounds=2, notifications=3,
                               server_seconds=1.5, wire_bytes_up=20)
        merged = a.merged_with(b)
        assert merged.location_update_rounds == 3
        assert merged.notifications == 5
        assert merged.server_seconds == 2.0
        assert merged.wire_bytes_up == 30
        # inputs untouched
        assert a.location_update_rounds == 1


class TestTracingConfig:
    SMALL = dict(initial_events=800, subscribers=2, timestamps=10,
                 event_rate=2.0, grid_n=40, seed=3)

    def test_result_carries_the_registry_with_spans(self):
        from repro.system import run_experiment

        result = run_experiment(ExperimentConfig(**self.SMALL))
        assert result.registry is not None
        summaries = result.registry.tracer.summaries()
        assert "construct" in summaries
        assert summaries["construct"]["count"] >= 2  # one per subscriber

    def test_trace_spans_off_records_nothing(self):
        from repro.system import run_experiment

        result = run_experiment(
            ExperimentConfig(trace_spans=False, **self.SMALL)
        )
        assert result.registry.tracer.histograms == {}
