"""Geometry substrate tests: points, rectangles, circles, grid, z-order."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Circle, Grid, Point, Rect, deinterleave, interleave

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_vector_arithmetic(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)
        assert Point(1, 2).scaled(3) == Point(3, 6)

    def test_dot_and_norm(self):
        assert Point(3, 4).norm() == 5.0
        assert Point(1, 0).dot(Point(0, 1)) == 0.0

    def test_normalized_unit_length(self):
        unit = Point(3, 4).normalized()
        assert math.isclose(unit.norm(), 1.0)

    def test_normalized_zero_vector_is_zero(self):
        assert Point(0, 0).normalized() == Point(0, 0)

    def test_angle_to_parallel_vectors(self):
        assert math.isclose(Point(2, 0).angle_to(Point(5, 0)), 1.0)

    def test_angle_to_opposite_vectors(self):
        assert math.isclose(Point(2, 0).angle_to(Point(-1, 0)), -1.0)

    def test_angle_to_zero_vector_is_neutral(self):
        assert Point(1, 1).angle_to(Point(0, 0)) == 0.0

    @given(x1=coords, y1=coords, x2=coords, y2=coords)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == b.distance_to(a)


class TestRect:
    def test_degenerate_rect_rejected(self):
        with pytest.raises(ValueError):
            Rect(5, 0, 0, 5)

    def test_contains_point_boundary_inclusive(self):
        rect = Rect(0, 0, 10, 10)
        assert rect.contains_point(Point(0, 0))
        assert rect.contains_point(Point(10, 10))
        assert not rect.contains_point(Point(10.01, 5))

    def test_min_distance_inside_is_zero(self):
        assert Rect(0, 0, 10, 10).min_distance_to_point(Point(5, 5)) == 0.0

    def test_min_distance_outside_corner(self):
        assert Rect(0, 0, 10, 10).min_distance_to_point(Point(13, 14)) == 5.0

    def test_max_distance_to_point(self):
        assert Rect(0, 0, 3, 4).max_distance_to_point(Point(0, 0)) == 5.0

    def test_min_distance_between_rects(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(4, 5, 6, 7)
        assert a.min_distance_to_rect(b) == 5.0

    def test_rect_intersections(self):
        a = Rect(0, 0, 10, 10)
        assert a.intersects(Rect(10, 10, 20, 20))  # corner touch counts
        assert not a.intersects(Rect(11, 11, 20, 20))

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(2, 2, 8, 8))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(2, 2, 12, 8))

    def test_quadrants_partition_area(self):
        rect = Rect(0, 0, 10, 20)
        quads = rect.quadrants()
        assert sum(q.width * q.height for q in quads) == pytest.approx(200.0)
        assert all(rect.contains_rect(q) for q in quads)

    @given(px=coords, py=coords)
    def test_min_le_max_distance(self, px, py):
        rect = Rect(-10, -10, 10, 10)
        p = Point(px, py)
        assert rect.min_distance_to_point(p) <= rect.max_distance_to_point(p)


class TestCircle:
    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Circle(Point(0, 0), -1.0)

    def test_contains_boundary_inclusive(self):
        circle = Circle(Point(0, 0), 5.0)
        assert circle.contains(Point(3, 4))
        assert not circle.contains(Point(3.01, 4))

    def test_intersects_rect(self):
        circle = Circle(Point(0, 0), 5.0)
        assert circle.intersects_rect(Rect(4, 0, 10, 1))
        assert not circle.intersects_rect(Rect(5.1, 5.1, 10, 10))

    def test_contains_rect(self):
        circle = Circle(Point(0, 0), 5.0)
        assert circle.contains_rect(Rect(-3, -3, 3, 3))
        assert not circle.contains_rect(Rect(-4, -4, 4, 4))

    def test_contains_any_corner(self):
        circle = Circle(Point(0, 0), 5.0)
        assert circle.contains_any_corner_of(Rect(3, 3, 100, 100))
        assert not circle.contains_any_corner_of(Rect(4, 4, 100, 100))


class TestGrid:
    def test_invalid_resolution_rejected(self, space):
        with pytest.raises(ValueError):
            Grid(0, space)

    def test_cell_of_clamps_outside_points(self, grid):
        assert grid.cell_of(Point(-100, -100)) == (0, 0)
        assert grid.cell_of(Point(1e9, 1e9)) == (grid.n - 1, grid.n - 1)

    def test_cell_rect_roundtrip(self, grid):
        for cell in [(0, 0), (10, 20), (49, 49)]:
            assert grid.cell_of(grid.cell_center(cell)) == cell

    def test_cell_index_roundtrip(self, grid):
        for cell in [(0, 0), (7, 3), (49, 49)]:
            assert grid.cell_from_index(grid.cell_index(cell)) == cell

    def test_neighbors_interior_count(self, grid):
        assert len(grid.neighbors((10, 10))) == 8

    def test_neighbors_corner_count(self, grid):
        assert len(grid.neighbors((0, 0))) == 3

    def test_cell_cell_distance_adjacent_zero(self, grid):
        assert grid.min_distance_cell_cell((5, 5), (6, 6)) == 0.0

    def test_cell_cell_distance_matches_rects(self, grid):
        a, b = (2, 3), (10, 20)
        expected = grid.cell_rect(a).min_distance_to_rect(grid.cell_rect(b))
        assert grid.min_distance_cell_cell(a, b) == pytest.approx(expected)

    def test_disk_offsets_contains_origin(self, grid):
        assert (0, 0) in grid.disk_offsets(100.0)

    def test_disk_offsets_symmetry(self, grid):
        offsets = grid.disk_offsets(700.0)
        assert all((-di, -dj) in offsets for (di, dj) in offsets)

    def test_dilate_matches_brute_force(self, grid):
        radius = 600.0
        cells = {(25, 25), (26, 25)}
        dilated = grid.dilate(cells, radius)
        for candidate in grid.all_cells():
            expected = any(
                grid.min_distance_cell_cell(candidate, c) < radius for c in cells
            )
            assert (candidate in dilated) == expected

    def test_dilation_strips_reconstruct_disk(self, grid):
        """dilate(c) - dilate(c+d) == strip(d) applied at c."""
        radius = 600.0
        offsets = grid.disk_offsets(radius)
        strips = grid.dilation_strips(radius)
        for direction, strip in strips.items():
            brute = {
                off
                for off in offsets
                if (off[0] - direction[0], off[1] - direction[1]) not in offsets
            }
            assert strip == brute

    def test_cells_intersecting_circle(self, grid):
        circle = Circle(Point(5000, 5000), 500.0)
        cells = list(grid.cells_intersecting_circle(circle))
        assert grid.cell_of(circle.center) in cells
        for cell in cells:
            assert circle.intersects_rect(grid.cell_rect(cell))


class TestZOrder:
    def test_roundtrip_small(self):
        for i in range(16):
            for j in range(16):
                assert deinterleave(interleave(i, j)) == (i, j)

    def test_known_codes(self):
        assert interleave(0, 0) == 0
        assert interleave(1, 0) == 1
        assert interleave(0, 1) == 2
        assert interleave(1, 1) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            interleave(-1, 0)
        with pytest.raises(ValueError):
            deinterleave(-5)

    @given(i=st.integers(min_value=0, max_value=2**30), j=st.integers(min_value=0, max_value=2**30))
    def test_roundtrip_property(self, i, j):
        assert deinterleave(interleave(i, j)) == (i, j)

    @given(i=st.integers(min_value=0, max_value=2**20), j=st.integers(min_value=0, max_value=2**20))
    def test_locality_monotone_in_each_axis(self, i, j):
        # Increasing one coordinate strictly increases the Morton code.
        assert interleave(i + 1, j) > interleave(i, j)
        assert interleave(i, j + 1) > interleave(i, j)
