"""Golden end-to-end trace: the batched path reproduces the single path
byte-for-byte.

A seeded 20-subscriber / 200-event simulation is run twice against fresh
servers — once publishing events one at a time, once through
``publish_batch`` in 20 bursts of 10 — and the resulting notification
logs must be *identical bytes*, equal to the log frozen under
``tests/golden/``.  This pins three things at once:

* the batched pipeline's delivery semantics (same events, same
  subscribers, same order — deferred safe-region construction may only
  suppress pings for events that Definition 2 guarantees are out of
  radius, never change a delivery);
* the determinism of the whole server stack under a fixed seed;
* accidental format/ordering drift in future refactors (the file is
  committed; any diff shows up in review).

Subscribers are stationary (the server has no locator): with movement,
mid-burst constructions would legitimately shift report timings, and the
two paths are only required to agree on *notifications*, which for
stationary subscribers is exact.

Regenerate after an intended behaviour change with:

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_trace.py
"""

from __future__ import annotations

import os
import random
from pathlib import Path
from typing import List

from repro.core import IGM
from repro.datasets import TwitterLikeGenerator
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree
from repro.system import ServerConfig, ElapsServer

SPACE = Rect(0, 0, 10_000, 10_000)
SEED = 7
GROUPS = 20
GROUP_SIZE = 10
GOLDEN = Path(__file__).parent / "golden" / "trace_20sub_200ev_seed7.log"


def fresh_server(repair: bool = False, vectorized: bool = False) -> ElapsServer:
    return ElapsServer(
        Grid(40, SPACE),
        IGM(max_cells=400),
        ServerConfig(
            initial_rate=2.0, repair=repair, vectorized_construction=vectorized
        ),
        event_index=BEQTree(SPACE, emax=32))


def run_simulation(batched: bool, repair: bool = False, vectorized: bool = False) -> str:
    """The canonical notification log of the seeded simulation."""
    generator = TwitterLikeGenerator(SPACE, seed=SEED)
    subscriptions = generator.subscriptions(20, size=2, radius=3_000)
    rng = random.Random(SEED * 101)
    server = fresh_server(repair, vectorized)
    lines: List[str] = []

    def record(notifications) -> None:
        for n in notifications:
            lines.append(f"t={n.timestamp} sub={n.sub_id} event={n.event.event_id}")

    for subscription in subscriptions:
        location = Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000))
        notifications, _ = server.subscribe(
            subscription, location, Point(0.0, 0.0), now=0
        )
        record(notifications)

    for group in range(GROUPS):
        now = group + 1
        events = generator.events(
            GROUP_SIZE, start_id=group * GROUP_SIZE, arrived_at=now, seed_offset=group
        )
        if batched:
            record(server.publish_batch(events, now))
        else:
            for event in events:
                record(server.publish(event, now))
    return "\n".join(lines) + "\n"


def test_single_and_batched_paths_reproduce_the_golden_trace():
    single = run_simulation(batched=False)
    batch = run_simulation(batched=True)
    assert batch == single  # byte-for-byte, before even touching the file

    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN.parent.mkdir(exist_ok=True)
        GOLDEN.write_bytes(single.encode())
    frozen = GOLDEN.read_bytes()
    assert single.encode() == frozen
    assert batch.encode() == frozen


def test_repair_mode_reproduces_the_golden_trace():
    """Repair carves regions instead of rebuilding, but notifications are
    pinned by geometry (an event is delivered iff within the radius), so
    the frozen trace must stay byte-identical with repair enabled — for
    both the single-event and the batched publish paths."""
    frozen = GOLDEN.read_bytes()
    assert run_simulation(batched=False, repair=True).encode() == frozen
    assert run_simulation(batched=True, repair=True).encode() == frozen


def test_vectorized_construction_reproduces_the_golden_trace():
    """The array-backed construction core (DESIGN.md §14) is byte-identical
    to the scalar oracle, so flipping ``vectorized_construction`` on must
    leave the frozen trace untouched — single, batched, and repair paths."""
    frozen = GOLDEN.read_bytes()
    assert run_simulation(batched=False, vectorized=True).encode() == frozen
    assert run_simulation(batched=True, vectorized=True).encode() == frozen
    assert run_simulation(batched=True, repair=True, vectorized=True).encode() == frozen


def test_trace_is_non_trivial():
    """The frozen log must actually exercise delivery, not be empty."""
    content = GOLDEN.read_text().splitlines()
    assert len(content) >= 30
    subs = {line.split(" sub=")[1].split(" ")[0] for line in content}
    timestamps = {line.split("t=")[1].split(" ")[0] for line in content}
    assert len(subs) >= 5       # multiple subscribers notified
    assert len(timestamps) >= 5  # spread across the burst timeline


def record_golden_trace(path) -> None:
    """Run the golden workload once through a TraceRecorder at ``path``."""
    from repro.testing import TraceRecorder

    generator = TwitterLikeGenerator(SPACE, seed=SEED)
    subscriptions = generator.subscriptions(20, size=2, radius=3_000)
    rng = random.Random(SEED * 101)
    with TraceRecorder(fresh_server(), str(path)) as server:
        for subscription in subscriptions:
            location = Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000))
            server.subscribe(subscription, location, Point(0.0, 0.0), now=0)
        for group in range(GROUPS):
            now = group + 1
            events = generator.events(
                GROUP_SIZE, start_id=group * GROUP_SIZE, arrived_at=now,
                seed_offset=group,
            )
            server.publish_batch(events, now)


def fresh_fleet(shards: int = 2, repair: bool = False, vectorized: bool = False):
    from repro.index import SubscriptionIndex  # noqa: F401  (parity import)
    from repro.system import SerialExecutor, ShardedElapsServer

    return ShardedElapsServer(
        Grid(40, SPACE),
        lambda: IGM(max_cells=400),
        ServerConfig(
            initial_rate=2.0, repair=repair, vectorized_construction=vectorized
        ),
        shards=shards,
        executor=SerialExecutor(),
        event_index_factory=lambda: BEQTree(SPACE, emax=32),
    )


def test_recorded_trace_replays_byte_identically_across_configs(tmp_path):
    """The trace-based regression core: one recorded run of the golden
    workload, replayed through materially different server configurations,
    must reproduce the frozen log byte-for-byte every time."""
    from repro.testing import replay_trace

    record_golden_trace(tmp_path)
    frozen = GOLDEN.read_bytes()
    targets = [
        ("plain", lambda: fresh_server(), None),
        ("repair", lambda: fresh_server(repair=True), None),
        ("singles", lambda: fresh_server(), 1),          # batches -> one-by-one
        ("rebatched", lambda: fresh_server(), 64),       # coalesced bursts
        ("sharded", lambda: fresh_fleet(shards=2), None),
        ("sharded-repair", lambda: fresh_fleet(shards=2, repair=True), 1),
        # The vectorized construction core, across every server shape:
        ("vec", lambda: fresh_server(vectorized=True), None),
        ("vec-repair", lambda: fresh_server(repair=True, vectorized=True), None),
        ("vec-rebatched", lambda: fresh_server(vectorized=True), 64),
        ("vec-sharded-1", lambda: fresh_fleet(shards=1, vectorized=True), None),
        ("vec-sharded-2", lambda: fresh_fleet(shards=2, vectorized=True), None),
        ("vec-sharded-4", lambda: fresh_fleet(shards=4, vectorized=True), None),
    ]
    for label, build, batch_size in targets:
        result = replay_trace(str(tmp_path), build(), batch_size=batch_size)
        assert result.log().encode() == frozen, f"{label} replay diverged"


def test_recovered_server_continues_the_golden_trace(tmp_path):
    """Crash a journaled server halfway through the golden workload and
    recover: finishing the workload yields the frozen log's delivery set."""
    from repro.system.journal import JournalSpec

    def journaled_server():
        return ElapsServer(
            Grid(40, SPACE),
            IGM(max_cells=400),
            ServerConfig(initial_rate=2.0, journal=JournalSpec(str(tmp_path))),
            event_index=BEQTree(SPACE, emax=32),
        )

    generator = TwitterLikeGenerator(SPACE, seed=SEED)
    subscriptions = generator.subscriptions(20, size=2, radius=3_000)
    rng = random.Random(SEED * 101)
    pairs = set()

    def record(notifications):
        pairs.update((n.sub_id, n.event.event_id) for n in notifications)

    server = journaled_server()
    for subscription in subscriptions:
        location = Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000))
        notifications, _ = server.subscribe(
            subscription, location, Point(0.0, 0.0), now=0
        )
        record(notifications)
    half = GROUPS // 2
    for group in range(half):
        events = generator.events(
            GROUP_SIZE, start_id=group * GROUP_SIZE, arrived_at=group + 1,
            seed_offset=group,
        )
        record(server.publish_batch(events, group + 1))
    server.close()  # clean kill between operations

    revived = journaled_server()
    revived.recover()
    for group in range(half, GROUPS):
        events = generator.events(
            GROUP_SIZE, start_id=group * GROUP_SIZE, arrived_at=group + 1,
            seed_offset=group,
        )
        record(revived.publish_batch(events, group + 1))
    revived.close()

    golden_pairs = set()
    for line in GOLDEN.read_text().splitlines():
        sub_id = int(line.split(" sub=")[1].split(" ")[0])
        event_id = int(line.split(" event=")[1])
        golden_pairs.add((sub_id, event_id))
    assert pairs == golden_pairs


def test_batched_path_populates_batch_counters():
    """The golden run drives the counters the benchmark report reads."""
    generator = TwitterLikeGenerator(SPACE, seed=SEED)
    subscriptions = generator.subscriptions(20, size=2, radius=3_000)
    rng = random.Random(SEED * 101)
    server = fresh_server()
    for subscription in subscriptions:
        location = Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000))
        server.subscribe(subscription, location, Point(0.0, 0.0), now=0)
    for group in range(GROUPS):
        events = generator.events(
            GROUP_SIZE, start_id=group * GROUP_SIZE, arrived_at=group + 1,
            seed_offset=group,
        )
        server.publish_batch(events, group + 1)
    stats = server.metrics.as_dict()
    assert stats["batches"] == GROUPS
    assert stats["batch_events"] == GROUPS * GROUP_SIZE
    assert stats["leaf_probes_saved"] > 0
    assert stats["match_batch_probes"] > 0
    assert "partitions_pruned" in stats
