"""Cross-index agreement: Quadtree, k-index, OpIndex and BEQ-Tree must all
produce exactly the brute-force result (the paper: "all the approaches
produce the same and complete results")."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Point, Rect
from repro.index import BEQTree, KIndex, OpIndex, QuadTree

from conftest import random_events

SPACE = Rect(0, 0, 10_000, 10_000)


def brute_force(events, subscription, at):
    return sorted(e.event_id for e in events if subscription.matches(e, at))


def build_all(events):
    quadtree = QuadTree(SPACE, max_per_leaf=16)
    kindex = KIndex()
    opindex = OpIndex()
    beq = BEQTree(SPACE, emax=16)
    for index in (quadtree, kindex, beq):
        index.insert_all(events)
    opindex.insert_all(events)
    return {"quadtree": quadtree, "kindex": kindex, "opindex": opindex, "beq": beq}


@pytest.fixture(scope="module")
def world():
    rng = random.Random(99)
    events = random_events(rng, SPACE, 400)
    return events, build_all(events)


SUBSCRIPTIONS = [
    Subscription(1, BooleanExpression([Predicate("a1", Operator.LE, 5)]), 2500),
    Subscription(
        2,
        BooleanExpression(
            [Predicate("a1", Operator.LE, 5), Predicate("a2", Operator.GE, 2)]
        ),
        3000,
    ),
    Subscription(
        3,
        BooleanExpression(
            [Predicate("a0", Operator.BETWEEN, (2, 7)), Predicate("a3", Operator.NE, 4)]
        ),
        4000,
    ),
    Subscription(
        4,
        BooleanExpression([Predicate("a2", Operator.IN, frozenset({1, 3, 5}))]),
        1500,
    ),
    Subscription(5, BooleanExpression([Predicate("zz", Operator.EQ, 1)]), 5000),
]


class TestAgreement:
    @pytest.mark.parametrize("sub", SUBSCRIPTIONS, ids=lambda s: f"sub{s.sub_id}")
    @pytest.mark.parametrize("at", [Point(5000, 5000), Point(100, 9000)], ids=["centre", "edge"])
    def test_all_indexes_match_brute_force(self, world, sub, at):
        events, indexes = world
        expected = brute_force(events, sub, at)
        for name, index in indexes.items():
            got = sorted(e.event_id for e in index.match(sub, at))
            assert got == expected, f"{name} diverged for sub {sub.sub_id}"

    def test_sizes_agree(self, world):
        events, indexes = world
        for name, index in indexes.items():
            assert len(index) == len(events), name


class TestDeletion:
    def test_delete_half_then_match(self):
        rng = random.Random(5)
        events = random_events(rng, SPACE, 200)
        indexes = build_all(events)
        for event in events[:100]:
            for index in indexes.values():
                index.delete(event)
        sub = SUBSCRIPTIONS[1]
        at = Point(5000, 5000)
        expected = brute_force(events[100:], sub, at)
        for name, index in indexes.items():
            assert len(index) == 100, name
            got = sorted(e.event_id for e in index.match(sub, at))
            assert got == expected, name

    def test_delete_unknown_raises(self):
        indexes = build_all(random_events(random.Random(1), SPACE, 10))
        ghost = Event(999, {"a": 1}, Point(1, 1))
        for name, index in indexes.items():
            with pytest.raises(KeyError):
                index.delete(ghost)

    def test_duplicate_insert_rejected(self):
        events = random_events(random.Random(2), SPACE, 5)
        indexes = build_all(events)
        for name, index in indexes.items():
            if name == "quadtree":
                continue  # purely spatial; duplicates are the caller's business
            with pytest.raises(ValueError):
                index.insert(events[0])


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_property_agreement(data):
    """Randomised workloads: the four indexes always agree with brute force."""
    rng = random.Random(data.draw(st.integers(0, 10_000)))
    events = random_events(rng, SPACE, data.draw(st.integers(1, 120)))
    indexes = build_all(events)
    size = data.draw(st.integers(1, 3))
    predicates = []
    for k in range(size):
        attr = f"a{data.draw(st.integers(0, 5))}"
        op = data.draw(
            st.sampled_from(
                [Operator.EQ, Operator.LE, Operator.GE, Operator.BETWEEN, Operator.NE]
            )
        )
        if op is Operator.BETWEEN:
            low = data.draw(st.integers(0, 8))
            operand = (low, low + data.draw(st.integers(0, 5)))
        else:
            operand = data.draw(st.integers(0, 9))
        predicates.append(Predicate(attr, op, operand))
    sub = Subscription(
        1,
        BooleanExpression(predicates),
        radius=data.draw(st.floats(100, 8000)),
    )
    at = Point(
        data.draw(st.floats(0, 10_000)),
        data.draw(st.floats(0, 10_000)),
    )
    expected = brute_force(events, sub, at)
    for name, index in indexes.items():
        got = sorted(e.event_id for e in index.match(sub, at))
        assert got == expected, name
