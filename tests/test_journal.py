"""The durability journal: framing, torn tails, snapshots, idempotence.

These are the property tests behind DESIGN.md §13's recovery invariants:
a torn tail is silently truncated, a checksum mismatch on a *complete*
record is corruption (fail loudly), snapshots rotate the log, and
replaying any journal twice is a no-op.
"""

from __future__ import annotations

import os
import struct

import pytest

from repro.core import IGM
from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree
from repro.system import ElapsServer, ServerConfig
from repro.system.journal import (
    BOOTSTRAP,
    EXPIRE,
    LOCATION,
    PUBLISH,
    PUBLISH_BATCH,
    RESYNC,
    SUBSCRIBE,
    UNSUBSCRIBE,
    Journal,
    JournalCorruptionError,
    JournalRecord,
    JournalSpec,
    ServerSnapshot,
    SubscriberSnapshot,
    decode_snapshot,
    encode_snapshot,
    read_records,
)

SPACE = Rect(0, 0, 10_000, 10_000)


def make_sub(sub_id=1, radius=1500.0):
    return Subscription(
        sub_id,
        BooleanExpression([Predicate("topic", Operator.EQ, "sale")]),
        radius=radius,
    )


def sale_event(event_id, x, y, ttl=None, **extra):
    return Event(
        event_id, {"topic": "sale", **extra}, Point(x, y),
        arrived_at=0, expires_at=ttl,
    )


def make_server(path=None, snapshot_every=0, **config_fields):
    journal = None
    if path is not None:
        journal = JournalSpec(str(path), snapshot_every=snapshot_every)
    config_fields.setdefault("initial_rate", 1.0)
    return ElapsServer(
        Grid(40, SPACE),
        IGM(max_cells=600),
        ServerConfig(journal=journal, **config_fields),
        event_index=BEQTree(SPACE, emax=32),
    )


def all_kind_records():
    """One record of every kind, with every optional field exercised."""
    return [
        JournalRecord(BOOTSTRAP, 0, events=(
            sale_event(1, 100, 100), sale_event(2, 200, 200, ttl=50, rank=3),
        )),
        JournalRecord(
            SUBSCRIBE, 0, now=1, sub_id=7, subscription=make_sub(7),
            location=Point(5000.5, 5001.25), velocity=Point(-3.5, 4.0),
        ),
        JournalRecord(
            LOCATION, 0, now=2, sub_id=7,
            location=Point(5100.0, 5000.0), velocity=Point(0.0, 0.0),
        ),
        JournalRecord(
            RESYNC, 0, now=3, sub_id=7, location=Point(5200.0, 5000.0),
            velocity=Point(1.0, 1.0), received=(1, 2, 9),
        ),
        JournalRecord(PUBLISH, 0, now=4, events=(sale_event(3, 300, 300),)),
        JournalRecord(PUBLISH_BATCH, 0, now=5, events=(
            sale_event(4, 400, 400), sale_event(5, 500, 500, note="x"),
        )),
        JournalRecord(EXPIRE, 0, now=6),
        JournalRecord(UNSUBSCRIBE, 0, sub_id=7),
    ]


class TestRecordRoundTrip:
    def test_every_kind_survives_a_disk_round_trip(self, tmp_path):
        journal = Journal(str(tmp_path))
        originals = all_kind_records()
        for record in originals:
            assert journal.append(record) > 0
        journal.close()

        decoded = list(read_records(str(tmp_path)))
        assert [r.kind for r in decoded] == [r.kind for r in originals]
        assert [r.seq for r in decoded] == list(range(1, len(originals) + 1))
        for got, want in zip(decoded, originals):
            assert got.now == want.now
            assert got.sub_id == (want.sub_id if want.kind != SUBSCRIBE
                                  else want.subscription.sub_id)
            assert got.received == want.received
            assert got.location == want.location
            assert got.velocity == want.velocity
            assert len(got.events) == len(want.events)
            for ge, we in zip(got.events, want.events):
                assert ge.event_id == we.event_id
                assert dict(ge.attributes) == dict(we.attributes)
                assert ge.location == we.location
                assert ge.arrived_at == we.arrived_at
                assert ge.expires_at == we.expires_at
        sub = decoded[1]
        assert sub.subscription == make_sub(7)

    def test_sequence_numbering_continues_across_reopen(self, tmp_path):
        with Journal(str(tmp_path)) as journal:
            journal.append(JournalRecord(EXPIRE, 0, now=1))
            journal.append(JournalRecord(EXPIRE, 0, now=2))
        with Journal(str(tmp_path)) as journal:
            assert journal.seq == 2
            journal.append(JournalRecord(EXPIRE, 0, now=3))
            assert journal.seq == 3
        seqs = [r.seq for r in read_records(str(tmp_path))]
        assert seqs == [1, 2, 3]

    def test_read_records_skips_already_applied_prefix(self, tmp_path):
        with Journal(str(tmp_path)) as journal:
            for now in range(5):
                journal.append(JournalRecord(EXPIRE, 0, now=now))
        assert [r.now for r in read_records(str(tmp_path), after_seq=3)] == [3, 4]


class TestTornTail:
    def _journal_with_records(self, tmp_path, count=4):
        journal = Journal(str(tmp_path))
        for now in range(count):
            journal.append(JournalRecord(PUBLISH, 0, now=now,
                                         events=(sale_event(now + 1, 100, 100),)))
        journal.close()
        return os.path.join(str(tmp_path), "journal.log")

    def test_torn_tail_is_truncated_silently(self, tmp_path):
        log_path = self._journal_with_records(tmp_path)
        size = os.path.getsize(log_path)
        with open(log_path, "r+b") as handle:
            handle.truncate(size - 7)  # rip through the final record

        journal = Journal(str(tmp_path))
        assert journal.torn_tail_truncated
        assert journal.record_count == 3
        assert journal.seq == 3
        # the truncated log is healed: a fresh append continues cleanly
        journal.append(JournalRecord(EXPIRE, 0, now=99))
        journal.close()
        records = list(read_records(str(tmp_path)))
        assert [r.seq for r in records] == [1, 2, 3, 4]
        assert records[-1].kind == EXPIRE

    def test_torn_header_is_also_a_torn_tail(self, tmp_path):
        log_path = self._journal_with_records(tmp_path, count=2)
        with open(log_path, "ab") as handle:
            handle.write(b"\x00\x00\x00")  # 3 of 8 header bytes
        journal = Journal(str(tmp_path))
        assert journal.torn_tail_truncated
        assert journal.record_count == 2
        journal.close()

    def test_corrupted_complete_record_raises(self, tmp_path):
        log_path = self._journal_with_records(tmp_path)
        with open(log_path, "r+b") as handle:
            handle.seek(20)  # inside the first record's payload
            byte = handle.read(1)
            handle.seek(20)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(JournalCorruptionError):
            Journal(str(tmp_path))
        with pytest.raises(JournalCorruptionError):
            list(read_records(str(tmp_path)))


class TestSnapshots:
    def _snapshot(self):
        return ServerSnapshot(
            last_seq=41,
            started_at=3,
            arrival_times=[1, 2, 2, 3],
            events=[sale_event(1, 100, 100), sale_event(2, 200, 200, ttl=9)],
            subscribers=[
                SubscriberSnapshot(
                    subscription=make_sub(7),
                    location=Point(5000.0, 5000.0),
                    velocity=Point(1.0, -1.0),
                    delivered=frozenset({1, 2}),
                    next_seq=2,
                    safe=(False, frozenset({(1, 2), (3, 4)})),
                    impact=(True, frozenset({(0, 0)})),
                ),
                SubscriberSnapshot(
                    subscription=make_sub(9, radius=800.0),
                    location=Point(100.0, 100.0),
                    velocity=Point(0.0, 0.0),
                    delivered=frozenset(),
                    safe=None,
                    impact=None,
                ),
            ],
            counters={"location_update_messages": 5, "bytes_measured": True},
        )

    def test_snapshot_codec_round_trip(self):
        snapshot = self._snapshot()
        decoded = decode_snapshot(encode_snapshot(snapshot))
        assert decoded.last_seq == 41
        assert decoded.started_at == 3
        assert decoded.arrival_times == [1, 2, 2, 3]
        assert [e.event_id for e in decoded.events] == [1, 2]
        assert decoded.events[1].expires_at == 9
        first, second = decoded.subscribers
        assert first.subscription == make_sub(7)
        assert first.delivered == frozenset({1, 2})
        assert first.next_seq == 2
        assert first.safe == (False, frozenset({(1, 2), (3, 4)}))
        assert first.impact == (True, frozenset({(0, 0)}))
        assert second.safe is None and second.impact is None
        # bytes_measured travelled through the int-only scalar codec
        assert decoded.counters["bytes_measured"] == 1
        assert decoded.counters["location_update_messages"] == 5

    def test_write_snapshot_rotates_the_log(self, tmp_path):
        journal = Journal(str(tmp_path))
        for now in range(3):
            journal.append(JournalRecord(EXPIRE, 0, now=now))
        journal.write_snapshot(encode_snapshot(self._snapshot()), seq=journal.seq)
        assert journal.record_count == 0
        assert os.path.getsize(os.path.join(str(tmp_path), "journal.log")) == 0
        seq, body = journal.read_snapshot()
        assert seq == 3
        assert decode_snapshot(body).last_seq == 41
        # appends after rotation continue the numbering past the snapshot
        journal.append(JournalRecord(EXPIRE, 0, now=9))
        assert journal.seq == 4
        journal.close()
        # a reopened journal resumes from max(snapshot seq, log tail)
        with Journal(str(tmp_path)) as reopened:
            assert reopened.seq == 4

    def test_snapshot_corruption_raises(self, tmp_path):
        journal = Journal(str(tmp_path))
        journal.write_snapshot(encode_snapshot(self._snapshot()), seq=1)
        journal.close()
        snapshot_path = os.path.join(str(tmp_path), "snapshot.bin")
        blob = bytearray(open(snapshot_path, "rb").read())
        blob[-1] ^= 0xFF
        with open(snapshot_path, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(JournalCorruptionError):
            Journal(str(tmp_path)).read_snapshot()

    def test_snapshot_bad_magic_raises(self, tmp_path):
        journal = Journal(str(tmp_path))
        journal.close()
        with open(os.path.join(str(tmp_path), "snapshot.bin"), "wb") as handle:
            handle.write(b"NOTASNAP" + struct.pack(">IQI", 1, 0, 0))
        with pytest.raises(JournalCorruptionError):
            Journal(str(tmp_path)).read_snapshot()


class TestSpec:
    def test_negative_snapshot_cadence_is_rejected(self):
        with pytest.raises(ValueError):
            JournalSpec("/tmp/x", snapshot_every=-1)

    def test_for_shard_derives_band_subdirectories(self, tmp_path):
        spec = JournalSpec(str(tmp_path), snapshot_every=64, fsync=False)
        band = spec.for_shard(2)
        assert band.path == os.path.join(str(tmp_path), "band-2")
        assert band.snapshot_every == 64

    def test_meta_sidecar_round_trip(self, tmp_path):
        journal = Journal(str(tmp_path))
        assert journal.read_meta() == {}
        journal.write_meta({"grid_n": 40, "dataset": "twitter"})
        journal.close()
        assert Journal(str(tmp_path)).read_meta() == {
            "grid_n": 40, "dataset": "twitter",
        }


class TestServerRecovery:
    def _drive(self, server):
        """A tiny deterministic workload touching every journaled op."""
        server.bootstrap([sale_event(1, 5100, 5000), sale_event(2, 9000, 9000)])
        server.subscribe(make_sub(7), Point(5000, 5000), Point(20, 0), now=0)
        server.subscribe(make_sub(8), Point(8900, 9000), Point(0, 0), now=0)
        server.publish(sale_event(10, 5050, 5000), now=1)
        server.publish_batch(
            [sale_event(11, 5200, 5000), sale_event(12, 700, 700)], now=2
        )
        server.report_location(7, Point(5100.0, 5000.0), Point(20.0, 0.0), now=3)
        server.resync(8, Point(8900.0, 9000.0), Point(0.0, 0.0), [2], now=4)
        server.unsubscribe(8)
        server.expire_due_events(5)

    def _state(self, server):
        return {
            "subs": sorted(server.subscribers),
            "corpus": sorted(e.event_id for e in server.corpus_matches(
                make_sub(7).expression)),
            "delivered": sorted(server.delivered_ids(7)),
            "next_seq": server.subscribers[7].next_seq,
        }

    def test_recover_rebuilds_state_and_is_idempotent(self, tmp_path):
        original = make_server(tmp_path)
        self._drive(original)
        want = self._state(original)
        original.close()

        revived = make_server(tmp_path)
        assert revived.subscribers == {}  # fresh process: nothing applied yet
        replayed = revived.recover()
        assert replayed > 0
        assert self._state(revived) == want
        # replaying the same journal again is a no-op by construction
        assert revived.recover() == 0
        assert self._state(revived) == want
        revived.close()

    def test_recovery_from_snapshot_plus_tail(self, tmp_path):
        original = make_server(tmp_path)
        self._drive(original)
        original.snapshot()
        # post-snapshot tail
        original.publish(sale_event(20, 5150, 5000), now=6)
        want = self._state(original)
        snapshot_seq = original.journal.seq - 1
        original.close()

        revived = make_server(tmp_path)
        replayed = revived.recover()
        assert replayed == 1  # only the tail record; the rest came from the image
        assert revived.applied_seq == snapshot_seq + 1
        assert self._state(revived) == want
        revived.close()

    def test_automatic_snapshot_cadence(self, tmp_path):
        server = make_server(tmp_path, snapshot_every=5)
        self._drive(server)
        assert server.metrics.snapshots_taken >= 1
        assert os.path.exists(os.path.join(str(tmp_path), "snapshot.bin"))
        # the rotated log holds fewer records than were journaled
        assert server.journal.record_count < server.metrics.journal_records
        want = self._state(server)
        server.close()

        revived = make_server(tmp_path, snapshot_every=5)
        revived.recover()
        assert self._state(revived) == want
        revived.close()

    def test_recovered_delivery_is_deduplicated(self, tmp_path):
        """The client-visible exactly-once core: after recovery the server
        still knows what each subscriber has received."""
        original = make_server(tmp_path)
        original.bootstrap([])
        original.subscribe(make_sub(7), Point(5000, 5000), Point(0, 0), now=0)
        original.publish(sale_event(10, 5050, 5000), now=1)
        original.close()

        revived = make_server(tmp_path)
        revived.recover()
        # a resync with the delivered id must not re-send event 10
        notifications, _ = revived.resync(
            7, Point(5000.0, 5000.0), Point(0.0, 0.0), [10], now=2
        )
        assert [n.event.event_id for n in notifications] == []
        # ...but a resync claiming nothing received re-sends it exactly once
        notifications, _ = revived.resync(
            7, Point(5000.0, 5000.0), Point(0.0, 0.0), [], now=3
        )
        assert [n.event.event_id for n in notifications] == [10]
        revived.close()
