"""Crash recovery: kill/restart differentials and a stateful machine.

Two attack angles on DESIGN.md §13's recovery invariants:

* a **rule-based state machine** drives a journaled server and an
  un-journaled mirror through the same random operations, with clean
  crash+recover cycles thrown in, and requires the two to stay
  state-identical after every step;
* a **25-seed kill/restart differential** kills a journaled deployment
  mid-workload by truncating the journal at a random byte offset,
  restarts from snapshot + tail, lets every client reconcile through
  resync, re-runs the lost operations, and requires the client-visible
  delivered sets to equal an uninterrupted oracle's — zero lost and zero
  duplicate notifications — across the single-publish and batched paths
  and sharded fleets at K ∈ {1, 2, 4}.

Clients here are stationary (they report, but do not move between
reports): replay answers location pings from the last journaled
position, so for these workloads the recovered deployment is an *exact*
re-execution (see the replay-fidelity note in repro.testing.replay).
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile

import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.core import IGM
from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree
from repro.system import (
    ElapsServer,
    SerialExecutor,
    ServerConfig,
    ShardedElapsServer,
)
from repro.system.journal import JournalSpec

SPACE = Rect(0, 0, 10_000, 10_000)
TOPICS = ("sale", "news")


def make_sub(sub_id, topic="sale", radius=2500.0):
    return Subscription(
        sub_id,
        BooleanExpression([Predicate("topic", Operator.EQ, topic)]),
        radius=radius,
    )


def build_single(path=None, snapshot_every=0):
    journal = None
    if path is not None:
        journal = JournalSpec(str(path), snapshot_every=snapshot_every)
    return ElapsServer(
        Grid(40, SPACE),
        IGM(max_cells=600),
        ServerConfig(initial_rate=1.0, journal=journal),
        event_index=BEQTree(SPACE, emax=32),
    )


def build_fleet(path=None, shards=2, snapshot_every=0):
    journal = None
    if path is not None:
        journal = JournalSpec(str(path), snapshot_every=snapshot_every)
    return ShardedElapsServer(
        Grid(40, SPACE),
        lambda: IGM(max_cells=600),
        ServerConfig(initial_rate=1.0, journal=journal),
        shards=shards,
        executor=SerialExecutor(),
        event_index_factory=lambda: BEQTree(SPACE, emax=32),
    )


# ----------------------------------------------------------------------
# The 25-seed kill/restart differential
# ----------------------------------------------------------------------
def make_workload(seed, subs=8, ticks=30):
    """A deterministic operation trace with stationary subscribers.

    Returns ``(positions, ops)`` where each op is a tuple whose first
    element names the public server operation to invoke.
    """
    rng = random.Random(seed)
    positions = {
        sub_id: Point(rng.uniform(500, 9500), rng.uniform(500, 9500))
        for sub_id in range(1, subs + 1)
    }
    event_id = 1000
    corpus = []
    for _ in range(10):
        event_id += 1
        corpus.append(Event(
            event_id, {"topic": rng.choice(TOPICS)},
            Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000)),
            arrived_at=0, expires_at=rng.choice((None, 15)),
        ))
    ops = [("bootstrap", corpus)]
    for sub_id, position in positions.items():
        topic = TOPICS[sub_id % len(TOPICS)]
        ops.append(("subscribe", make_sub(sub_id, topic), position, 0))

    def fresh_event(now):
        nonlocal event_id
        event_id += 1
        return Event(
            event_id, {"topic": rng.choice(TOPICS)},
            Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000)),
            arrived_at=now,
            expires_at=None if rng.random() < 0.5 else now + rng.randint(3, 10),
        )

    for now in range(1, ticks + 1):
        roll = rng.random()
        if roll < 0.5:
            ops.append(("publish", fresh_event(now), now))
        elif roll < 0.75:
            ops.append(("publish_batch",
                        [fresh_event(now) for _ in range(rng.randint(2, 4))], now))
        elif roll < 0.9:
            sub_id = rng.randint(1, subs)
            ops.append(("report_location", sub_id, positions[sub_id], now))
        else:
            ops.append(("expire", now))
    return positions, ops


def apply_op(server, op, received):
    """Run one workload op; fold its notifications into ``received``."""
    kind = op[0]
    if kind == "bootstrap":
        server.bootstrap(op[1])
        return
    if kind == "subscribe":
        notifications, _ = server.subscribe(op[1], op[2], Point(0.0, 0.0), now=op[3])
    elif kind == "publish":
        notifications = server.publish(op[1], op[2])
    elif kind == "publish_batch":
        notifications = server.publish_batch(list(op[1]), op[2])
    elif kind == "report_location":
        notifications, _ = server.report_location(
            op[1], op[2], Point(0.0, 0.0), now=op[3]
        )
    elif kind == "expire":
        server.expire_due_events(op[1])
        return
    else:  # pragma: no cover - workload bug
        raise AssertionError(f"unknown op {kind}")
    for notification in notifications:
        received.setdefault(notification.sub_id, set()).add(
            notification.event.event_id
        )


def run_oracle(builder, ops):
    """The uninterrupted run: what every client should end up with."""
    server = builder(None)
    received = {}
    for op in ops:
        apply_op(server, op, received)
    server.close()
    return received


def journal_seqs(server):
    """The per-journal sequence frontier of a deployment (singleton
    tuple for one server, one entry per band for a fleet)."""
    if isinstance(server, ShardedElapsServer):
        return tuple(worker.journal.seq for worker in server.shard_servers)
    return (server.journal.seq,)


def applied_seqs(server):
    if isinstance(server, ShardedElapsServer):
        return tuple(worker.applied_seq for worker in server.shard_servers)
    return (server.applied_seq,)


def truncate_random_log(path, server, rng):
    """Simulate the kill: rip bytes off the end of one journal file."""
    if isinstance(server, ShardedElapsServer):
        band = rng.randrange(len(server.shard_servers))
        log = os.path.join(str(path), f"band-{band}", "journal.log")
    else:
        log = os.path.join(str(path), "journal.log")
    size = os.path.getsize(log)
    with open(log, "r+b") as handle:
        handle.truncate(rng.randint(0, size))


def run_crash_differential(builder, path, seed):
    positions, ops = make_workload(seed)
    oracle = run_oracle(builder, ops)

    rng = random.Random(seed * 31 + 7)
    crash_at = rng.randint(len(ops) // 3, len(ops) - 2)

    server = builder(path)
    received = {}
    op_seqs = []
    for op in ops[:crash_at]:
        apply_op(server, op, received)
        op_seqs.append(journal_seqs(server))
    server.close()
    truncate_random_log(path, server, rng)

    revived = builder(path)
    assert revived.recover() >= 0
    applied = applied_seqs(revived)

    # Every surviving client reconnects and reconciles what it holds.
    crash_now = ops[crash_at][-1] if isinstance(ops[crash_at][-1], int) else 0
    for sub_id, position in positions.items():
        if sub_id not in revived.subscribers:
            continue  # its subscribe record was lost; the op re-runs below
        notifications, _ = revived.resync(
            sub_id, position, Point(0.0, 0.0),
            sorted(received.get(sub_id, ())), now=crash_now,
        )
        for notification in notifications:
            received.setdefault(notification.sub_id, set()).add(
                notification.event.event_id
            )

    # Resume from the first operation the journal did not retain.
    resume = crash_at
    for index, seqs in enumerate(op_seqs):
        if any(s > a for s, a in zip(seqs, applied)):
            resume = index
            break
    for op in ops[resume:]:
        apply_op(revived, op, received)
    revived.close()

    assert received == oracle, (
        f"seed {seed}: client-visible delivery diverged from the oracle"
    )


CRASH_CONFIGS = [
    ("single", lambda path: build_single(path)),
    ("single-snap", lambda path: build_single(path, snapshot_every=8)),
    ("fleet-1", lambda path: build_fleet(path, shards=1)),
    ("fleet-2", lambda path: build_fleet(path, shards=2)),
    ("fleet-4", lambda path: build_fleet(path, shards=4)),
]


def _crash_params():
    params = []
    for seed in range(25):
        name, builder = CRASH_CONFIGS[seed % len(CRASH_CONFIGS)]
        marks = [pytest.mark.recovery] if seed >= len(CRASH_CONFIGS) else []
        params.append(pytest.param(seed, builder, id=f"seed{seed}-{name}",
                                   marks=marks))
    return params


@pytest.mark.parametrize("seed,builder", _crash_params())
def test_kill_restart_loses_and_duplicates_nothing(seed, builder, tmp_path):
    run_crash_differential(builder, tmp_path, seed)


def test_journaling_is_transparent(tmp_path):
    """Without a crash, a journaled run delivers notification-for-
    notification what an un-journaled run delivers (seq stamps included)."""
    _, ops = make_workload(seed=99)

    def collect(server):
        wire = []
        received = {}
        for op in ops:
            apply_op(server, op, received)
        for sub_id, record in sorted(server.subscribers.items()):
            wire.append((sub_id, tuple(sorted(record.delivered)), record.next_seq))
        server.close()
        return wire, received

    plain = collect(build_single(None))
    journaled = collect(build_single(tmp_path))
    assert plain == journaled


# ----------------------------------------------------------------------
# The stateful differential machine
# ----------------------------------------------------------------------
class JournaledServerMachine(RuleBasedStateMachine):
    """A journaled server and an un-journaled mirror fed identical
    operations; clean crash+recover cycles must leave them identical."""

    def __init__(self):
        super().__init__()
        self.dir = tempfile.mkdtemp(prefix="elaps-journal-")
        self.journaled = build_single(self.dir, snapshot_every=0)
        self.mirror = build_single(None)
        self.journaled.bootstrap([])
        self.mirror.bootstrap([])
        self.now = 0
        self.next_sub = 1
        self.next_event = 1

    def _both(self, call):
        left = call(self.journaled)
        right = call(self.mirror)
        return left, right

    def _fresh_event(self, x, y, topic, ttl):
        self.next_event += 1
        return Event(
            self.next_event, {"topic": topic}, Point(x, y),
            arrived_at=self.now,
            expires_at=None if ttl == 0 else self.now + ttl,
        )

    coordinates = st.tuples(
        st.integers(min_value=0, max_value=9999),
        st.integers(min_value=0, max_value=9999),
    )

    @rule(position=coordinates, topic=st.sampled_from(TOPICS))
    def subscribe(self, position, topic):
        self.now += 1
        self.next_sub += 1
        sub = make_sub(self.next_sub, topic)
        point = Point(float(position[0]), float(position[1]))
        left, right = self._both(
            lambda s: s.subscribe(sub, point, Point(0.0, 0.0), now=self.now)[0]
        )
        assert [n.event.event_id for n in left] == [n.event.event_id for n in right]

    @rule(position=coordinates, topic=st.sampled_from(TOPICS),
          ttl=st.integers(min_value=0, max_value=6))
    def publish(self, position, topic, ttl):
        self.now += 1
        event = self._fresh_event(float(position[0]), float(position[1]), topic, ttl)
        left, right = self._both(lambda s: s.publish(event, self.now))
        assert [n.sub_id for n in left] == [n.sub_id for n in right]

    @rule(positions=st.lists(coordinates, min_size=2, max_size=4),
          topic=st.sampled_from(TOPICS))
    def publish_batch(self, positions, topic):
        self.now += 1
        events = [
            self._fresh_event(float(x), float(y), topic, ttl=5)
            for x, y in positions
        ]
        left, right = self._both(lambda s: s.publish_batch(list(events), self.now))
        assert (
            [(n.sub_id, n.event.event_id) for n in left]
            == [(n.sub_id, n.event.event_id) for n in right]
        )

    @rule(position=coordinates)
    def report(self, position):
        subs = sorted(self.journaled.subscribers)
        if not subs:
            return
        self.now += 1
        sub_id = subs[position[0] % len(subs)]
        point = Point(float(position[0]), float(position[1]))
        left, right = self._both(
            lambda s: s.report_location(sub_id, point, Point(0.0, 0.0),
                                        now=self.now)[0]
        )
        assert [n.event.event_id for n in left] == [n.event.event_id for n in right]

    @rule()
    def expire(self):
        self.now += 1
        left, right = self._both(lambda s: s.expire_due_events(self.now))
        assert left == right

    @rule()
    def snapshot(self):
        self.journaled.snapshot()

    @rule()
    def crash_and_recover(self):
        """A clean kill: close, rebuild from disk, recover."""
        self.journaled.close()
        self.journaled = build_single(self.dir)
        self.journaled.recover()

    @invariant()
    def state_matches_the_mirror(self):
        assert sorted(self.journaled.subscribers) == sorted(self.mirror.subscribers)
        for sub_id, record in self.mirror.subscribers.items():
            twin = self.journaled.subscribers[sub_id]
            assert twin.delivered == record.delivered
            assert twin.next_seq == record.next_seq
            assert twin.location == record.location
        for topic in TOPICS:
            expression = make_sub(0, topic).expression
            assert (
                sorted(e.event_id for e in self.journaled.corpus_matches(expression))
                == sorted(e.event_id for e in self.mirror.corpus_matches(expression))
            )

    def teardown(self):
        self.journaled.close()
        self.mirror.close()
        shutil.rmtree(self.dir, ignore_errors=True)


JournaledServerMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestJournaledServerMachine = JournaledServerMachine.TestCase
