"""Byte-stream fuzzing of the server's frame decoder.

The hardening contract of DESIGN.md §8: whatever bytes arrive on the
socket, the event loop never sees an unhandled exception — the server
counts the incident in :class:`CommunicationStats`, drops the offending
connection, and keeps serving well-behaved clients.
"""

from __future__ import annotations

import asyncio
import random
import struct

import pytest

from repro.core import IGM
from repro.expressions import BooleanExpression, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree
from repro.system import NetworkConfig, ServerConfig, ElapsServer
from repro.system.network import ElapsNetworkClient, ElapsTCPServer
from repro.system.protocol import SafeRegionPush, SubscribeMessage, encode_message

SPACE = Rect(0, 0, 10_000, 10_000)
FUZZ_SEED = 0xE1A95


def make_tcp_server(**kwargs) -> ElapsTCPServer:
    server = ElapsServer(
        Grid(40, SPACE),
        IGM(max_cells=400),
        ServerConfig(initial_rate=1.0),
        event_index=BEQTree(SPACE, emax=32))
    kwargs.setdefault("read_timeout", 0.3)
    config = NetworkConfig().with_(**kwargs)
    return ElapsTCPServer(server, port=0, timestamp_seconds=0.05, config=config)


def make_sub(sub_id=1):
    return Subscription(
        sub_id,
        BooleanExpression([Predicate("topic", Operator.EQ, "sale")]),
        radius=1_500.0,
    )


async def send_raw(port: int, payload: bytes) -> None:
    """Open a raw connection, blast bytes, close."""
    _, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    try:
        await writer.drain()
        # give the server a beat to chew on the garbage before EOF
        await asyncio.sleep(0.05)
    except ConnectionError:
        pass
    writer.close()


async def assert_still_serving(tcp: ElapsTCPServer, sub_id: int) -> None:
    """A well-behaved subscriber must still get a region push."""
    client = ElapsNetworkClient("127.0.0.1", tcp.port)
    await client.connect()
    received = await client.subscribe(make_sub(sub_id), Point(5_000, 5_000), Point(40, 0))
    assert isinstance(received[-1], SafeRegionPush)
    await client.close()


def run_with_loop_watch(coro_factory):
    """Run a scenario capturing unhandled event-loop exceptions."""
    loop_errors = []

    async def wrapper():
        loop = asyncio.get_running_loop()
        loop.set_exception_handler(
            lambda _loop, context: loop_errors.append(context)
        )
        await coro_factory()

    asyncio.run(wrapper())
    return loop_errors


class TestGarbageStreams:
    def test_random_byte_streams_never_crash_the_loop(self):
        rng = random.Random(FUZZ_SEED)
        blobs = [rng.randbytes(rng.randint(1, 400)) for _ in range(25)]

        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            for blob in blobs:
                await send_raw(tcp.port, blob)
            # let any stalled readers hit their timeout
            await asyncio.sleep(0.5)
            metrics = tcp.server.metrics
            assert (
                metrics.malformed_frames
                + metrics.read_timeouts
                + metrics.connection_resets
                > 0
            )
            await assert_still_serving(tcp, sub_id=7)
            await tcp.stop()

        assert run_with_loop_watch(scenario) == []

    def test_corrupted_valid_frames_are_rejected_and_counted(self):
        rng = random.Random(FUZZ_SEED + 1)
        frame = encode_message(
            SubscribeMessage(
                1, 1_500.0,
                BooleanExpression([Predicate("topic", Operator.EQ, "sale")]),
                Point(5_000, 5_000), Point(40, 0),
            )
        )

        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            for _ in range(40):
                mutated = bytearray(frame)
                for _ in range(rng.randint(1, 4)):
                    mutated[rng.randrange(len(mutated))] ^= rng.randrange(1, 256)
                await send_raw(tcp.port, bytes(mutated))
            await asyncio.sleep(0.5)
            await assert_still_serving(tcp, sub_id=9)
            await tcp.stop()

        assert run_with_loop_watch(scenario) == []

    def test_truncated_frame_counts_as_malformed(self):
        frame = encode_message(
            SubscribeMessage(
                2, 1_500.0,
                BooleanExpression([Predicate("topic", Operator.EQ, "sale")]),
                Point(5_000, 5_000), Point(40, 0),
            )
        )

        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            await send_raw(tcp.port, frame[: len(frame) // 2])
            await asyncio.sleep(0.2)
            assert tcp.server.metrics.malformed_frames >= 1
            await assert_still_serving(tcp, sub_id=3)
            await tcp.stop()

        assert run_with_loop_watch(scenario) == []

    def test_oversized_declared_length_is_malformed(self):
        async def scenario():
            tcp = make_tcp_server(max_frame_length=1024)
            await tcp.start()
            await send_raw(tcp.port, struct.pack(">BI", 1, 1 << 30))
            await asyncio.sleep(0.2)
            assert tcp.server.metrics.malformed_frames >= 1
            await assert_still_serving(tcp, sub_id=4)
            await tcp.stop()

        assert run_with_loop_watch(scenario) == []

    def test_unknown_message_type_is_malformed(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            await send_raw(tcp.port, struct.pack(">BI", 201, 4) + b"\x00" * 4)
            await asyncio.sleep(0.2)
            assert tcp.server.metrics.malformed_frames >= 1
            await assert_still_serving(tcp, sub_id=5)
            await tcp.stop()

        assert run_with_loop_watch(scenario) == []

    def test_slow_loris_connection_is_reaped(self):
        """A connection that sends a header then stalls hits the timeout."""

        async def scenario():
            tcp = make_tcp_server(read_timeout=0.2)
            await tcp.start()
            _, writer = await asyncio.open_connection("127.0.0.1", tcp.port)
            writer.write(struct.pack(">BI", 1, 500))  # promises 500 bytes, sends none
            await writer.drain()
            await asyncio.sleep(0.6)
            assert tcp.server.metrics.read_timeouts >= 1
            writer.close()
            await assert_still_serving(tcp, sub_id=6)
            await tcp.stop()

        assert run_with_loop_watch(scenario) == []
