"""Differential testing against the brute-force oracle.

The contract (ISSUE: batched fast path): on any workload,

    BEQ single-query  ==  BEQ batched  ==  OpIndex  ==  oracle

where the oracle is the O(S*E) scan of :mod:`repro.testing.oracle` and
"==" means the same notification pairs.  For the two BEQ paths the bar
is higher: ``match_batch`` must return the *same events in the same
order* as per-query ``match`` calls (the batched walk preserves the
single-query leaf order), so golden traces stay byte-identical.

Workloads come from two generators: the paper-shaped Twitter-like
dataset (shared Zipf vocabulary, hotspot locations — realistic
selectivity) and the adversarial uniform generator of ``conftest``
(tiny attribute space — heavy predicate collisions).  Together the two
hypothesis suites run 230 randomized workloads per test session, plus
the churn suite below.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from conftest import random_events

from repro.datasets import TwitterLikeGenerator
from repro.geometry import Point, Rect
from repro.index import BEQTree, OpIndex, QuadTree
from repro.testing import BruteForceOracle
from repro.testing.oracle import ids

SPACE = Rect(0, 0, 10_000, 10_000)


def random_points(rng: random.Random, count: int):
    return [
        Point(rng.uniform(SPACE.x_min, SPACE.x_max), rng.uniform(SPACE.y_min, SPACE.y_max))
        for _ in range(count)
    ]


def assert_all_agree(events, queries):
    """The four-way equivalence on one workload."""
    oracle = BruteForceOracle(events)
    beq = BEQTree(SPACE, emax=16)
    beq.insert_all(events)
    beq_batch_built = BEQTree(SPACE, emax=16)
    beq_batch_built.insert_batch(events)
    opindex = OpIndex()
    opindex.insert_all(events)
    quadtree = QuadTree(SPACE, max_per_leaf=8)
    quadtree.insert_all(events)

    single = [beq.match(sub, at) for sub, at in queries]
    batched = beq.match_batch(queries)
    quad_batched = quadtree.match_batch(queries)

    for i, (sub, at) in enumerate(queries):
        expected = sorted(ids(oracle.match(sub, at)))
        # Strict order-equivalence between the two BEQ paths.
        assert ids(batched[i]) == ids(single[i]), sub.sub_id
        # A z-order batch insert builds the same corpus.
        assert sorted(ids(beq_batch_built.match(sub, at))) == expected, sub.sub_id
        # Set-equivalence of every index against the oracle.
        assert sorted(ids(single[i])) == expected, sub.sub_id
        assert sorted(ids(opindex.match(sub, at))) == expected, sub.sub_id
        assert sorted(ids(quad_batched[i])) == expected, sub.sub_id

    # The canonical pair set, cross-checked once per workload.
    assert {
        (queries[i][0].sub_id, event.event_id)
        for i, result in enumerate(batched)
        for event in result
    } == oracle.matching_pairs(queries)


@settings(max_examples=150, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    event_count=st.integers(1, 150),
    sub_count=st.integers(1, 12),
    sub_size=st.integers(1, 4),
    radius=st.floats(200, 8_000),
)
def test_twitter_workloads_agree(seed, event_count, sub_count, sub_size, radius):
    """Paper-shaped workloads: Zipf vocabulary, hotspot locations."""
    generator = TwitterLikeGenerator(SPACE, seed=seed)
    events = generator.events(event_count)
    subscriptions = generator.subscriptions(sub_count, size=sub_size, radius=radius)
    rng = random.Random(seed ^ 0xBEEF)
    queries = list(zip(subscriptions, random_points(rng, sub_count)))
    assert_all_agree(events, queries)


@settings(max_examples=80, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    event_count=st.integers(1, 120),
    sub_count=st.integers(1, 8),
)
def test_adversarial_workloads_agree(seed, event_count, sub_count):
    """Tiny attribute space: every predicate collides with every event."""
    rng = random.Random(seed)
    events = random_events(rng, SPACE, event_count, attributes=3)
    generator = TwitterLikeGenerator(SPACE, seed=seed)
    subscriptions = generator.subscriptions(sub_count, size=2)
    # Half the subscriptions speak the events' attribute language so the
    # collision machinery is actually exercised.
    from repro.expressions import BooleanExpression, Operator, Predicate, Subscription

    for k in range(sub_count // 2 + 1):
        attr = f"a{rng.randint(0, 2)}"
        subscriptions.append(
            Subscription(
                1000 + k,
                BooleanExpression([Predicate(attr, Operator.GE, rng.randint(0, 5))]),
                radius=rng.uniform(500, 9_000),
            )
        )
    queries = list(zip(subscriptions, random_points(rng, len(subscriptions))))
    assert_all_agree(events, queries)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**20))
def test_agreement_survives_churn(seed):
    """Cache invalidation: delete/reinsert between batched match rounds.

    The per-leaf clause caches and the batched walk must never serve
    results for events that left the corpus (or miss events that joined
    after the cache warmed).
    """
    generator = TwitterLikeGenerator(SPACE, seed=seed)
    rng = random.Random(seed)
    events = generator.events(80)
    subscriptions = generator.subscriptions(6, size=2, radius=4_000)
    queries = list(zip(subscriptions, random_points(rng, 6)))

    beq = BEQTree(SPACE, emax=16)
    beq.insert_batch(events)
    oracle = BruteForceOracle(events)
    beq.match_batch(queries)  # warm every leaf cache

    doomed = rng.sample(events, 30)
    for event in doomed:
        beq.delete(event)
        oracle.delete(event)
    fresh = generator.events(40, start_id=1_000, seed_offset=1)
    beq.insert_batch(fresh)
    for event in fresh:
        oracle.insert(event)

    batched = beq.match_batch(queries)
    for i, (sub, at) in enumerate(queries):
        assert sorted(ids(batched[i])) == sorted(ids(oracle.match(sub, at)))
        assert ids(batched[i]) == ids(beq.match(sub, at))


def test_oracle_event_direction_matches_query_direction():
    """matches_of_event is the transpose of match."""
    generator = TwitterLikeGenerator(SPACE, seed=7)
    events = generator.events(60)
    subscriptions = generator.subscriptions(8, size=2, radius=5_000)
    rng = random.Random(7)
    queries = list(zip(subscriptions, random_points(rng, 8)))
    oracle = BruteForceOracle(events)
    pairs = oracle.matching_pairs(queries)
    transposed = {
        (sub.sub_id, event.event_id)
        for event in events
        for sub in oracle.matches_of_event(event, queries)
    }
    assert transposed == pairs
