"""Differential testing against the brute-force oracle.

The contract (ISSUE: batched fast path): on any workload,

    BEQ single-query  ==  BEQ batched  ==  OpIndex  ==  oracle

where the oracle is the O(S*E) scan of :mod:`repro.testing.oracle` and
"==" means the same notification pairs.  For the two BEQ paths the bar
is higher: ``match_batch`` must return the *same events in the same
order* as per-query ``match`` calls (the batched walk preserves the
single-query leaf order), so golden traces stay byte-identical.

Workloads come from two generators: the paper-shaped Twitter-like
dataset (shared Zipf vocabulary, hotspot locations — realistic
selectivity) and the adversarial uniform generator of ``conftest``
(tiny attribute space — heavy predicate collisions).  Together the two
hypothesis suites run 230 randomized workloads per test session, plus
the churn suite below.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from conftest import random_events

from repro.datasets import TwitterLikeGenerator
from repro.geometry import Point, Rect
from repro.index import BEQTree, OpIndex, QuadTree
from repro.testing import BruteForceOracle
from repro.testing.oracle import ids

SPACE = Rect(0, 0, 10_000, 10_000)


def random_points(rng: random.Random, count: int):
    return [
        Point(rng.uniform(SPACE.x_min, SPACE.x_max), rng.uniform(SPACE.y_min, SPACE.y_max))
        for _ in range(count)
    ]


def assert_all_agree(events, queries):
    """The four-way equivalence on one workload."""
    oracle = BruteForceOracle(events)
    beq = BEQTree(SPACE, emax=16)
    beq.insert_all(events)
    beq_batch_built = BEQTree(SPACE, emax=16)
    beq_batch_built.insert_batch(events)
    opindex = OpIndex()
    opindex.insert_all(events)
    quadtree = QuadTree(SPACE, max_per_leaf=8)
    quadtree.insert_all(events)

    single = [beq.match(sub, at) for sub, at in queries]
    batched = beq.match_batch(queries)
    quad_batched = quadtree.match_batch(queries)

    for i, (sub, at) in enumerate(queries):
        expected = sorted(ids(oracle.match(sub, at)))
        # Strict order-equivalence between the two BEQ paths.
        assert ids(batched[i]) == ids(single[i]), sub.sub_id
        # A z-order batch insert builds the same corpus.
        assert sorted(ids(beq_batch_built.match(sub, at))) == expected, sub.sub_id
        # Set-equivalence of every index against the oracle.
        assert sorted(ids(single[i])) == expected, sub.sub_id
        assert sorted(ids(opindex.match(sub, at))) == expected, sub.sub_id
        assert sorted(ids(quad_batched[i])) == expected, sub.sub_id

    # The canonical pair set, cross-checked once per workload.
    assert {
        (queries[i][0].sub_id, event.event_id)
        for i, result in enumerate(batched)
        for event in result
    } == oracle.matching_pairs(queries)


@settings(max_examples=150, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    event_count=st.integers(1, 150),
    sub_count=st.integers(1, 12),
    sub_size=st.integers(1, 4),
    radius=st.floats(200, 8_000),
)
def test_twitter_workloads_agree(seed, event_count, sub_count, sub_size, radius):
    """Paper-shaped workloads: Zipf vocabulary, hotspot locations."""
    generator = TwitterLikeGenerator(SPACE, seed=seed)
    events = generator.events(event_count)
    subscriptions = generator.subscriptions(sub_count, size=sub_size, radius=radius)
    rng = random.Random(seed ^ 0xBEEF)
    queries = list(zip(subscriptions, random_points(rng, sub_count)))
    assert_all_agree(events, queries)


@settings(max_examples=80, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    event_count=st.integers(1, 120),
    sub_count=st.integers(1, 8),
)
def test_adversarial_workloads_agree(seed, event_count, sub_count):
    """Tiny attribute space: every predicate collides with every event."""
    rng = random.Random(seed)
    events = random_events(rng, SPACE, event_count, attributes=3)
    generator = TwitterLikeGenerator(SPACE, seed=seed)
    subscriptions = generator.subscriptions(sub_count, size=2)
    # Half the subscriptions speak the events' attribute language so the
    # collision machinery is actually exercised.
    from repro.expressions import BooleanExpression, Operator, Predicate, Subscription

    for k in range(sub_count // 2 + 1):
        attr = f"a{rng.randint(0, 2)}"
        subscriptions.append(
            Subscription(
                1000 + k,
                BooleanExpression([Predicate(attr, Operator.GE, rng.randint(0, 5))]),
                radius=rng.uniform(500, 9_000),
            )
        )
    queries = list(zip(subscriptions, random_points(rng, len(subscriptions))))
    assert_all_agree(events, queries)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**20))
def test_agreement_survives_churn(seed):
    """Cache invalidation: delete/reinsert between batched match rounds.

    The per-leaf clause caches and the batched walk must never serve
    results for events that left the corpus (or miss events that joined
    after the cache warmed).
    """
    generator = TwitterLikeGenerator(SPACE, seed=seed)
    rng = random.Random(seed)
    events = generator.events(80)
    subscriptions = generator.subscriptions(6, size=2, radius=4_000)
    queries = list(zip(subscriptions, random_points(rng, 6)))

    beq = BEQTree(SPACE, emax=16)
    beq.insert_batch(events)
    oracle = BruteForceOracle(events)
    beq.match_batch(queries)  # warm every leaf cache

    doomed = rng.sample(events, 30)
    for event in doomed:
        beq.delete(event)
        oracle.delete(event)
    fresh = generator.events(40, start_id=1_000, seed_offset=1)
    beq.insert_batch(fresh)
    for event in fresh:
        oracle.insert(event)

    batched = beq.match_batch(queries)
    for i, (sub, at) in enumerate(queries):
        assert sorted(ids(batched[i])) == sorted(ids(oracle.match(sub, at)))
        assert ids(batched[i]) == ids(beq.match(sub, at))


# ----------------------------------------------------------------------
# Repair mode vs always-rebuild (the tentpole differential)
# ----------------------------------------------------------------------
def _run_event_workload(seed: int, *, repair: bool):
    """A seeded stationary-subscriber event stream on one server."""
    from repro.core import IGM
    from repro.geometry import Grid
    from repro.system import CallbackTransport, ElapsServer, ServerConfig

    generator = TwitterLikeGenerator(SPACE, seed=seed)
    subscriptions = generator.subscriptions(6, size=2, radius=2_000)
    rng = random.Random(seed ^ 0xC0FFEE)
    server = ElapsServer(
        Grid(40, SPACE),
        IGM(max_cells=200),
        ServerConfig(initial_rate=2.0, repair=repair),
        event_index=BEQTree(SPACE, emax=16))
    positions = {}
    log = []
    for subscription in subscriptions:
        location = random_points(rng, 1)[0]
        positions[subscription.sub_id] = location
        notifications, _ = server.subscribe(
            subscription, location, Point(0.0, 0.0), now=0
        )
        log.extend((n.timestamp, n.sub_id, n.event.event_id) for n in notifications)
    server.transport = CallbackTransport(
        locate=lambda sub_id: (positions[sub_id], Point(0.0, 0.0)))
    for step in range(10):
        events = generator.events(
            6, start_id=step * 6, arrived_at=step + 1, seed_offset=step
        )
        for event in events:
            log.extend(
                (n.timestamp, n.sub_id, n.event.event_id)
                for n in server.publish(event, step + 1)
            )
    return server, log


def _assert_regions_valid(server) -> None:
    """Brute force: no safe cell within the radius of a live constraint.

    The repaired region must exclude every unsafe cell exactly as a fresh
    construction would (Definition 1 at cell granularity) — delivered
    events excepted, since they never constrain the subscriber again.
    """
    live = list(server._events_by_id.values())
    for record in server.subscribers.values():
        radius = record.subscription.radius
        constraints = [
            event.location
            for event in live
            if record.subscription.expression.matches(event.attributes)
            and event.event_id not in record.delivered
        ]
        for cell in record.safe.iter_cells():
            rect = server.grid.cell_rect(cell)
            for location in constraints:
                assert rect.min_distance_to_point(location) > radius, (
                    record.subscription.sub_id,
                    cell,
                )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**20))
def test_repair_and_rebuild_deliver_identical_notifications(seed):
    """Notification streams are pinned by geometry, not region policy.

    Any valid safe/impact region pair yields the same deliveries (an
    event is delivered iff within the radius when it arrives or when the
    subscriber reports) — so repair mode must reproduce always-rebuild's
    log exactly, and its regions must survive the brute-force validity
    oracle.
    """
    _, rebuild_log = _run_event_workload(seed, repair=False)
    repair_server, repair_log = _run_event_workload(seed, repair=True)
    assert repair_log == rebuild_log
    _assert_regions_valid(repair_server)


def test_repair_workload_actually_repairs():
    """The differential above is vacuous unless repairs really happen."""
    server, _ = _run_event_workload(7, repair=True)
    assert server.metrics.repairs > 0
    baseline, _ = _run_event_workload(7, repair=False)
    assert server.metrics.constructions < baseline.metrics.constructions


def test_oracle_event_direction_matches_query_direction():
    """matches_of_event is the transpose of match."""
    generator = TwitterLikeGenerator(SPACE, seed=7)
    events = generator.events(60)
    subscriptions = generator.subscriptions(8, size=2, radius=5_000)
    rng = random.Random(7)
    queries = list(zip(subscriptions, random_points(rng, 8)))
    oracle = BruteForceOracle(events)
    pairs = oracle.matching_pairs(queries)
    transposed = {
        (sub.sub_id, event.event_id)
        for event in events
        for sub in oracle.matches_of_event(event, queries)
    }
    assert transposed == pairs
