"""KSubscriptionIndex: the k-index alternative subscription index must
behave exactly like the OpIndex-style default."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.expressions import (
    BooleanExpression,
    DnfExpression,
    Event,
    Operator,
    Predicate,
    Subscription,
)
from repro.geometry import Point, Rect
from repro.index import KSubscriptionIndex, SubscriptionIndex
from repro.system import ServerConfig, ElapsServer
from repro.core import IGM
from repro.geometry import Grid


def make_sub(sub_id, *predicates, radius=1000.0):
    return Subscription(sub_id, BooleanExpression(predicates), radius)


class TestKSubscriptionIndex:
    def test_basic_match(self):
        index = KSubscriptionIndex()
        index.insert(make_sub(1, Predicate("a", Operator.GE, 2)))
        index.insert(make_sub(2, Predicate("a", Operator.GE, 9)))
        assert {s.sub_id for s in index.match_event(Event(1, {"a": 5}, Point(0, 0)))} == {1}

    def test_size_prune_never_loses_matches(self):
        index = KSubscriptionIndex()
        # a clause with both bounds on one attribute: size 2 but only one
        # distinct attribute — must survive the size prune for |e| = 1
        index.insert(
            make_sub(1, Predicate("a", Operator.GE, 2), Predicate("a", Operator.LE, 8))
        )
        assert index.match_event(Event(1, {"a": 5}, Point(0, 0)))

    def test_three_predicates_on_one_attribute(self):
        # regression: the prune must key on distinct attributes, not on
        # the raw predicate count (a clause may stack any number of
        # predicates on one attribute)
        index = KSubscriptionIndex()
        index.insert(
            make_sub(
                1,
                Predicate("a", Operator.GE, 2),
                Predicate("a", Operator.LE, 8),
                Predicate("a", Operator.NE, 5),
            )
        )
        assert index.match_event(Event(1, {"a": 3}, Point(0, 0)))
        assert not index.match_event(Event(2, {"a": 5}, Point(0, 0)))

    def test_oversized_clauses_pruned(self):
        index = KSubscriptionIndex()
        index.insert(
            make_sub(
                1,
                Predicate("a", Operator.GE, 0),
                Predicate("b", Operator.GE, 0),
                Predicate("c", Operator.GE, 0),
            )
        )
        # |e| = 1 -> clauses of size 3 cannot match
        assert not index.match_event(Event(1, {"a": 5}, Point(0, 0)))

    def test_delete(self):
        index = KSubscriptionIndex()
        sub = make_sub(1, Predicate("a", Operator.GE, 2))
        index.insert(sub)
        index.delete(sub)
        assert len(index) == 0
        assert not index.match_event(Event(1, {"a": 5}, Point(0, 0)))

    def test_delete_unknown_raises(self):
        with pytest.raises(KeyError):
            KSubscriptionIndex().delete(make_sub(9, Predicate("a", Operator.GE, 2)))

    def test_duplicate_insert_rejected(self):
        index = KSubscriptionIndex()
        index.insert(make_sub(1, Predicate("a", Operator.GE, 2)))
        with pytest.raises(ValueError):
            index.insert(make_sub(1, Predicate("b", Operator.EQ, 3)))

    def test_dnf_any_clause(self):
        index = KSubscriptionIndex()
        dnf = DnfExpression([
            BooleanExpression([Predicate("a", Operator.EQ, 1)]),
            BooleanExpression([Predicate("b", Operator.EQ, 2)]),
        ])
        index.insert(Subscription(1, dnf, 500.0))
        assert index.match_event(Event(1, {"b": 2}, Point(0, 0)))
        assert not index.match_event(Event(2, {"b": 3}, Point(0, 0)))


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_property_agrees_with_opindex_variant(data):
    """The two subscription indexes always return the same matches."""
    rng = random.Random(data.draw(st.integers(0, 99999)))
    kindex = KSubscriptionIndex()
    opindex = SubscriptionIndex()
    for sub_id in range(data.draw(st.integers(1, 20))):
        predicates = []
        for _ in range(rng.randint(1, 3)):
            attr = f"a{rng.randint(0, 4)}"
            op = rng.choice([Operator.EQ, Operator.LE, Operator.GE, Operator.NE])
            predicates.append(Predicate(attr, op, rng.randint(0, 9)))
        sub = Subscription(sub_id, BooleanExpression(predicates), 1000.0)
        kindex.insert(sub)
        opindex.insert(sub)
    for _ in range(10):
        attrs = {f"a{rng.randint(0, 4)}": rng.randint(0, 9) for _ in range(rng.randint(1, 5))}
        event = Event(0, attrs, Point(0, 0))
        assert (
            {s.sub_id for s in kindex.match_event(event)}
            == {s.sub_id for s in opindex.match_event(event)}
        )


class TestServerPluggability:
    def test_server_runs_on_ksub_index(self):
        space = Rect(0, 0, 10_000, 10_000)
        server = ElapsServer(
            Grid(40, space),
            IGM(max_cells=300),
            ServerConfig(initial_rate=1.0),
            subscription_index=KSubscriptionIndex())
        sub = make_sub(1, Predicate("topic", Operator.EQ, "sale"), radius=1500.0)
        server.subscribe(sub, Point(5000, 5000), Point(40, 0))
        notifications = server.publish(
            Event(10, {"topic": "sale"}, Point(5100, 5000)), now=1
        )
        assert [n.sub_id for n in notifications] == [1]
