"""Sorted inverted lists and the counting algorithm."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.expressions import Operator, Predicate
from repro.index import AttributeLists, SortedTupleList


class TestSortedTupleList:
    def test_insert_keeps_order(self):
        lst = SortedTupleList()
        for value, payload in [(5, "a"), (1, "b"), (3, "c"), (3, "d")]:
            lst.insert(value, payload)
        assert [v for v, _ in lst] == [1, 3, 3, 5]

    def test_delete_specific_payload(self):
        lst = SortedTupleList()
        lst.insert(3, "a")
        lst.insert(3, "b")
        assert lst.delete(3, "a")
        assert list(lst) == [(3, "b")]

    def test_delete_missing_returns_false(self):
        lst = SortedTupleList()
        lst.insert(1, "a")
        assert not lst.delete(2, "a")
        assert not lst.delete(1, "zz")

    @pytest.mark.parametrize(
        "op,operand,expected",
        [
            (Operator.EQ, 3, {"c", "d"}),
            (Operator.NE, 3, {"a", "b", "e"}),
            (Operator.LT, 3, {"b"}),
            (Operator.LE, 3, {"b", "c", "d"}),
            (Operator.GT, 3, {"a", "e"}),
            (Operator.GE, 3, {"a", "c", "d", "e"}),
            (Operator.BETWEEN, (2, 5), {"a", "c", "d"}),
            (Operator.IN, frozenset({1, 7}), {"b", "e"}),
            (Operator.NOT_IN, frozenset({1, 7}), {"a", "c", "d"}),
        ],
    )
    def test_iter_matching_per_operator(self, op, operand, expected):
        lst = SortedTupleList()
        for value, payload in [(5, "a"), (1, "b"), (3, "c"), (3, "d"), (7, "e")]:
            lst.insert(value, payload)
        assert set(lst.iter_matching(Predicate("x", op, operand))) == expected

    def test_range_for_rejects_noncontiguous(self):
        lst = SortedTupleList()
        with pytest.raises(ValueError):
            lst.range_for(Predicate("x", Operator.NE, 3))

    def test_iter_value_range(self):
        lst = SortedTupleList()
        for v in (1, 2, 3, 4, 5):
            lst.insert(v, str(v))
        assert [p for _, p in lst.iter_value_range(2, 4)] == ["2", "3", "4"]

    def test_iter_value_from(self):
        lst = SortedTupleList()
        for v in (1, 2, 3):
            lst.insert(v, str(v))
        assert [p for _, p in lst.iter_value_from(2)] == ["2", "3"]

    @given(
        values=st.lists(st.integers(min_value=0, max_value=50), max_size=60),
        operand=st.integers(min_value=0, max_value=50),
        op=st.sampled_from([Operator.EQ, Operator.LT, Operator.LE, Operator.GT, Operator.GE]),
    )
    def test_matches_brute_force(self, values, operand, op):
        lst = SortedTupleList()
        for index, value in enumerate(values):
            lst.insert(value, index)
        predicate = Predicate("x", op, operand)
        expected = {i for i, v in enumerate(values) if predicate.matches(v)}
        assert set(lst.iter_matching(predicate)) == expected


def raw_in(attribute, members):
    """An IN predicate whose operand bypasses frozenset normalisation.

    Models operands carrying literal duplicates (e.g. ``(3, 3)``) — the
    pre-fix bug surface: ``iter_matching`` ran one range scan per member
    and double-yielded the shared run."""
    predicate = Predicate(attribute, Operator.IN, frozenset(members))
    object.__setattr__(predicate, "operand", tuple(members))
    return predicate


class TestInDeduplication:
    def test_duplicate_member_yields_once(self):
        lst = SortedTupleList()
        lst.insert(3, "e1")
        assert list(lst.iter_matching(raw_in("x", (3, 3)))) == ["e1"]

    def test_aliased_members_yield_once(self):
        # True and 1 are equal, so their runs overlap completely; the
        # overlap must not double-yield either entry.
        lst = SortedTupleList()
        lst.insert(1, "e1")
        lst.insert(True, "e2")
        assert sorted(lst.iter_matching(raw_in("x", (True, 1)))) == ["e1", "e2"]

    def test_duplicate_in_member_cannot_fake_full_count(self):
        # Regression (PR 9 satellite 1): the duplicate-member IN counted
        # e1 twice, reaching |s| = 2 although the b-predicate fails — a
        # false-positive be-match.
        lists = AttributeLists()
        lists.insert_tuples([("a", 3), ("b", 9)], "e1")
        predicates = [raw_in("a", (3, 3)), Predicate("b", Operator.EQ, 2)]
        assert lists.matching_payloads(predicates) == []


class TestMixedTypeValues:
    def test_mixed_insert_does_not_raise(self):
        lst = SortedTupleList()
        lst.insert(3, "e1")
        lst.insert("x", "e2")  # pre-fix: TypeError from the raw bisect
        lst.insert(1, "e3")
        assert [v for v, _ in lst] == [1, 3, "x"]

    def test_range_scans_stay_in_group(self):
        lst = SortedTupleList()
        for value, payload in [(3, "e1"), ("x", "e2"), (1, "e3"), ("a", "e4")]:
            lst.insert(value, payload)
        assert set(lst.iter_matching(Predicate("k", Operator.LT, 5))) == {"e1", "e3"}
        assert set(lst.iter_matching(Predicate("k", Operator.GT, 0))) == {"e1", "e3"}
        assert set(lst.iter_matching(Predicate("k", Operator.LE, "x"))) == {"e2", "e4"}
        assert set(lst.iter_matching(Predicate("k", Operator.GE, "b"))) == {"e2"}
        assert set(lst.iter_matching(Predicate("k", Operator.EQ, "x"))) == {"e2"}
        assert set(lst.iter_matching(Predicate("k", Operator.NE, 3))) == {"e2", "e3", "e4"}

    def test_mixed_in_members(self):
        lst = SortedTupleList()
        for value, payload in [(3, "e1"), ("x", "e2")]:
            lst.insert(value, payload)
        predicate = Predicate("k", Operator.IN, frozenset({3, "x", 7}))
        assert set(lst.iter_matching(predicate)) == {"e1", "e2"}

    def test_matches_is_total_across_groups(self):
        assert not Predicate("k", Operator.LT, 5).matches("x")
        assert not Predicate("k", Operator.BETWEEN, (2, 5)).matches("x")
        assert Predicate("k", Operator.NE, 5).matches("x")
        assert Predicate("k", Operator.NOT_IN, frozenset({5})).matches("x")

    def test_delete_across_mixed_groups(self):
        lst = SortedTupleList()
        lst.insert(3, "e1")
        lst.insert("x", "e2")
        assert lst.delete("x", "e2")
        assert list(lst) == [(3, "e1")]

    def test_bool_aliases_int_in_order(self):
        lst = SortedTupleList()
        lst.insert(True, "e1")
        lst.insert(0, "e2")
        lst.insert(2, "e3")
        assert set(lst.iter_matching(Predicate("k", Operator.LE, 1))) == {"e1", "e2"}
        assert set(lst.iter_matching(Predicate("k", Operator.EQ, 1))) == {"e1"}
        assert lst.delete(1, "e1")  # 1 == True finds the aliased entry


class TestAttributeLists:
    def _loaded(self):
        lists = AttributeLists()
        lists.insert_tuples([("a", 1), ("b", 5)], "e1")
        lists.insert_tuples([("a", 3), ("b", 2)], "e2")
        lists.insert_tuples([("a", 3)], "e3")
        return lists

    def test_counting_algorithm(self):
        lists = self._loaded()
        predicates = [
            Predicate("a", Operator.GE, 2),
            Predicate("b", Operator.LE, 5),
        ]
        assert set(lists.matching_payloads(predicates)) == {"e2"}

    def test_missing_attribute_short_circuits(self):
        lists = self._loaded()
        predicates = [Predicate("zz", Operator.EQ, 1)]
        assert lists.count_matches(predicates) == {}

    def test_delete_tuples_prunes_empty_lists(self):
        lists = self._loaded()
        lists.delete_tuples([("b", 5)], "e1")
        lists.delete_tuples([("b", 2)], "e2")
        assert "b" not in lists

    def test_same_attribute_twice_counts_twice(self):
        lists = AttributeLists()
        lists.insert_tuples([("a", 5)], "e1")
        predicates = [
            Predicate("a", Operator.GE, 2),
            Predicate("a", Operator.LE, 8),
        ]
        assert set(lists.matching_payloads(predicates)) == {"e1"}
