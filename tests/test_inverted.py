"""Sorted inverted lists and the counting algorithm."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.expressions import Operator, Predicate
from repro.index import AttributeLists, SortedTupleList


class TestSortedTupleList:
    def test_insert_keeps_order(self):
        lst = SortedTupleList()
        for value, payload in [(5, "a"), (1, "b"), (3, "c"), (3, "d")]:
            lst.insert(value, payload)
        assert [v for v, _ in lst] == [1, 3, 3, 5]

    def test_delete_specific_payload(self):
        lst = SortedTupleList()
        lst.insert(3, "a")
        lst.insert(3, "b")
        assert lst.delete(3, "a")
        assert list(lst) == [(3, "b")]

    def test_delete_missing_returns_false(self):
        lst = SortedTupleList()
        lst.insert(1, "a")
        assert not lst.delete(2, "a")
        assert not lst.delete(1, "zz")

    @pytest.mark.parametrize(
        "op,operand,expected",
        [
            (Operator.EQ, 3, {"c", "d"}),
            (Operator.NE, 3, {"a", "b", "e"}),
            (Operator.LT, 3, {"b"}),
            (Operator.LE, 3, {"b", "c", "d"}),
            (Operator.GT, 3, {"a", "e"}),
            (Operator.GE, 3, {"a", "c", "d", "e"}),
            (Operator.BETWEEN, (2, 5), {"a", "c", "d"}),
            (Operator.IN, frozenset({1, 7}), {"b", "e"}),
            (Operator.NOT_IN, frozenset({1, 7}), {"a", "c", "d"}),
        ],
    )
    def test_iter_matching_per_operator(self, op, operand, expected):
        lst = SortedTupleList()
        for value, payload in [(5, "a"), (1, "b"), (3, "c"), (3, "d"), (7, "e")]:
            lst.insert(value, payload)
        assert set(lst.iter_matching(Predicate("x", op, operand))) == expected

    def test_range_for_rejects_noncontiguous(self):
        lst = SortedTupleList()
        with pytest.raises(ValueError):
            lst.range_for(Predicate("x", Operator.NE, 3))

    def test_iter_value_range(self):
        lst = SortedTupleList()
        for v in (1, 2, 3, 4, 5):
            lst.insert(v, str(v))
        assert [p for _, p in lst.iter_value_range(2, 4)] == ["2", "3", "4"]

    def test_iter_value_from(self):
        lst = SortedTupleList()
        for v in (1, 2, 3):
            lst.insert(v, str(v))
        assert [p for _, p in lst.iter_value_from(2)] == ["2", "3"]

    @given(
        values=st.lists(st.integers(min_value=0, max_value=50), max_size=60),
        operand=st.integers(min_value=0, max_value=50),
        op=st.sampled_from([Operator.EQ, Operator.LT, Operator.LE, Operator.GT, Operator.GE]),
    )
    def test_matches_brute_force(self, values, operand, op):
        lst = SortedTupleList()
        for index, value in enumerate(values):
            lst.insert(value, index)
        predicate = Predicate("x", op, operand)
        expected = {i for i, v in enumerate(values) if predicate.matches(v)}
        assert set(lst.iter_matching(predicate)) == expected


class TestAttributeLists:
    def _loaded(self):
        lists = AttributeLists()
        lists.insert_tuples([("a", 1), ("b", 5)], "e1")
        lists.insert_tuples([("a", 3), ("b", 2)], "e2")
        lists.insert_tuples([("a", 3)], "e3")
        return lists

    def test_counting_algorithm(self):
        lists = self._loaded()
        predicates = [
            Predicate("a", Operator.GE, 2),
            Predicate("b", Operator.LE, 5),
        ]
        assert set(lists.matching_payloads(predicates)) == {"e2"}

    def test_missing_attribute_short_circuits(self):
        lists = self._loaded()
        predicates = [Predicate("zz", Operator.EQ, 1)]
        assert lists.count_matches(predicates) == {}

    def test_delete_tuples_prunes_empty_lists(self):
        lists = self._loaded()
        lists.delete_tuples([("b", 5)], "e1")
        lists.delete_tuples([("b", 2)], "e2")
        assert "b" not in lists

    def test_same_attribute_twice_counts_twice(self):
        lists = AttributeLists()
        lists.insert_tuples([("a", 5)], "e1")
        predicates = [
            Predicate("a", Operator.GE, 2),
            Predicate("a", Operator.LE, 8),
        ]
        assert set(lists.matching_payloads(predicates)) == {"e1"}
