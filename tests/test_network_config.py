"""The unified network configuration surface: NetworkConfig/ClientConfig.

Covers the migration contract of the connection front-end redesign
(DESIGN.md §17):

* :class:`NetworkConfig` — frozen, validated, copy-with-changes, one
  derived ``hard_cap``;
* :class:`ClientConfig` + :class:`ReconnectPolicy` — the shared client
  surface for :class:`ElapsNetworkClient` and
  :class:`ResilientElapsClient`;
* the deprecated per-knob keyword arguments on both the TCP server and
  the resilient client still work but warn, build the exact same
  config, and unknown keywords fail loudly.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import IGM
from repro.expressions import BooleanExpression, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.system import (
    ClientConfig,
    ElapsServer,
    ElapsTCPServer,
    NetworkConfig,
    ReconnectPolicy,
    ResilientElapsClient,
    ServerConfig,
)

SPACE = Rect(0, 0, 10_000, 10_000)


def make_core() -> ElapsServer:
    return ElapsServer(Grid(40, SPACE), IGM(max_cells=400), ServerConfig())


def make_sub(sub_id=1):
    return Subscription(
        sub_id,
        BooleanExpression([Predicate("topic", Operator.EQ, "sale")]),
        radius=1_500.0,
    )


# ----------------------------------------------------------------------
# NetworkConfig
# ----------------------------------------------------------------------
class TestNetworkConfig:
    def test_frozen(self):
        config = NetworkConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.send_queue = 5

    def test_with_copies_and_overrides(self):
        config = NetworkConfig(send_queue=64)
        derived = config.with_(read_timeout=1.0)
        assert derived.read_timeout == 1.0
        assert derived.send_queue == 64
        assert config.read_timeout == 30.0  # original untouched

    def test_hard_cap_defaults_to_twice_soft(self):
        assert NetworkConfig(send_queue=100).hard_cap == 200
        assert NetworkConfig(send_queue=100, send_queue_hard=150).hard_cap == 150

    @pytest.mark.parametrize("bad", [
        {"read_timeout": -1.0},
        {"write_timeout": -0.5},
        {"max_frame_length": 0},
        {"ingress_queue": 0},
        {"send_queue": 0},
        {"send_queue": 10, "send_queue_hard": 9},
        {"shed_policy": "latest"},
        {"slow_consumer_grace": -0.1},
        {"max_connections": 0},
        {"stop_timeout": -1.0},
        {"write_buffer_limit": 0},
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(ValueError):
            NetworkConfig(**bad)

    def test_none_disables_timeouts(self):
        config = NetworkConfig(read_timeout=None, write_timeout=None)
        assert config.read_timeout is None
        assert config.write_timeout is None


# ----------------------------------------------------------------------
# ClientConfig / ReconnectPolicy
# ----------------------------------------------------------------------
class TestClientConfig:
    def test_effective_read_timeout_defaults_to_heartbeat_multiple(self):
        config = ClientConfig(heartbeat_interval=0.5)
        assert config.effective_read_timeout == pytest.approx(2.0)
        explicit = ClientConfig(heartbeat_interval=0.5, read_timeout=9.0)
        assert explicit.effective_read_timeout == 9.0

    def test_with_copies_and_overrides(self):
        config = ClientConfig(heartbeat_interval=0.25)
        derived = config.with_(receive_timeout=1.0)
        assert derived.heartbeat_interval == 0.25
        assert derived.receive_timeout == 1.0

    @pytest.mark.parametrize("bad", [
        {"heartbeat_interval": 0},
        {"read_timeout": 0},
        {"receive_timeout": 0},
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(ValueError):
            ClientConfig(**bad)

    def test_reconnect_policy_delay_bounds(self):
        policy = ReconnectPolicy(base_delay=0.1, max_delay=1.0,
                                 multiplier=2.0, jitter=0.5)

        class FixedRng:
            def random(self):
                return 1.0  # worst-case jitter draw

        for attempt in range(10):
            delay = policy.delay_for(attempt, FixedRng())
            assert 0 < delay <= 1.0 * 1.5  # max_delay * (1 + jitter)

    def test_reconnect_policy_validation(self):
        with pytest.raises(ValueError):
            ReconnectPolicy(base_delay=0)
        with pytest.raises(ValueError):
            ReconnectPolicy(base_delay=2.0, max_delay=1.0)
        with pytest.raises(ValueError):
            ReconnectPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            ReconnectPolicy(jitter=-0.1)


# ----------------------------------------------------------------------
# Deprecation shims
# ----------------------------------------------------------------------
class TestServerShims:
    def test_legacy_kwargs_warn_and_layer_onto_config(self):
        with pytest.warns(DeprecationWarning, match="retain_subscribers"):
            tcp = ElapsTCPServer(
                make_core(), port=0, read_timeout=1.5, retain_subscribers=True
            )
        assert tcp.config.read_timeout == 1.5
        assert tcp.config.retain_subscribers is True
        # the untouched knobs keep their defaults
        assert tcp.config.send_queue == NetworkConfig().send_queue

    def test_legacy_kwargs_layer_onto_an_explicit_config(self):
        base = NetworkConfig(send_queue=32)
        with pytest.warns(DeprecationWarning):
            tcp = ElapsTCPServer(make_core(), config=base, write_timeout=0.5)
        assert tcp.config.send_queue == 32
        assert tcp.config.write_timeout == 0.5

    def test_unknown_kwarg_is_a_type_error(self):
        with pytest.raises(TypeError, match="nonsense"):
            ElapsTCPServer(make_core(), nonsense=1)

    def test_compat_properties_mirror_config(self):
        config = NetworkConfig(
            read_timeout=7.0, write_timeout=3.0,
            max_frame_length=4096, retain_subscribers=True,
        )
        tcp = ElapsTCPServer(make_core(), config=config)
        assert tcp.read_timeout == 7.0
        assert tcp.write_timeout == 3.0
        assert tcp.max_frame_length == 4096
        assert tcp.retain_subscribers is True

    def test_config_form_does_not_warn(self, recwarn):
        ElapsTCPServer(make_core(), config=NetworkConfig(read_timeout=1.0))
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]


class TestClientShims:
    def _client(self, **kwargs):
        return ResilientElapsClient(
            "127.0.0.1", 1, make_sub(), Point(5_000, 5_000), **kwargs
        )

    def test_legacy_kwargs_warn_and_layer_onto_config(self):
        policy = ReconnectPolicy(base_delay=0.01, max_delay=0.1)
        with pytest.warns(DeprecationWarning, match="heartbeat_interval"):
            client = self._client(heartbeat_interval=0.2, policy=policy)
        assert client.config.heartbeat_interval == 0.2
        assert client.config.reconnect is policy
        # derived views the supervisor uses
        assert client.heartbeat_interval == 0.2
        assert client.policy is policy

    def test_legacy_read_timeout_overrides_heartbeat_default(self):
        with pytest.warns(DeprecationWarning):
            client = self._client(read_timeout=9.0)
        assert client.read_timeout == 9.0

    def test_unknown_kwarg_is_a_type_error(self):
        with pytest.raises(TypeError, match="nonsense"):
            self._client(nonsense=1)

    def test_config_form_does_not_warn(self, recwarn):
        client = self._client(config=ClientConfig(heartbeat_interval=0.2))
        assert client.heartbeat_interval == 0.2
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]
