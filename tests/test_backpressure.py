"""The backpressure-aware connection front-end (DESIGN.md §17).

Four layers of coverage:

* :class:`SendQueue` semantics — supersede, stale-shed, the dirty-delta
  guard, grace-window and hard-cap verdicts — driven directly;
* hypothesis properties over random offer/pop interleavings: depth never
  exceeds the hard cap, notifications are never dropped and keep their
  order, and no delta survives a shed of its base region until a full
  push re-syncs the chain;
* end-to-end behaviours over real sockets: golden-trace byte-identity on
  the no-shed path, slow-consumer disconnects, supersede under a stalled
  reader, admission control, the ``stop()`` leak fix, ``push_errors``,
  and the dispatch-offload mode;
* a chaos run (``-m chaos``): a throttled reader behind the fault proxy
  is shed and disconnected, then heals through reconnect + resync into
  an exactly-once delivered set.
"""

from __future__ import annotations

import asyncio
import socket

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import IGM
from repro.expressions import BooleanExpression, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree
from repro.system import (
    ClientConfig,
    CommunicationStats,
    ElapsNetworkClient,
    ElapsServer,
    ElapsTCPServer,
    FrameKind,
    NetworkConfig,
    ReconnectPolicy,
    ResilientElapsClient,
    SendQueue,
    SendVerdict,
    ServerConfig,
)
from repro.system.network import read_frame
from repro.system.protocol import (
    LocationReport,
    NotificationMessage,
    subscribe_message_for,
)
from repro.testing import FaultConfig, chaos_proxy

SPACE = Rect(0, 0, 10_000, 10_000)


def make_tcp_server(config: NetworkConfig = None, **core_kwargs) -> ElapsTCPServer:
    server = ElapsServer(
        Grid(40, SPACE),
        IGM(max_cells=400),
        ServerConfig(initial_rate=1.0),
        event_index=BEQTree(SPACE, emax=32),
        **core_kwargs,
    )
    return ElapsTCPServer(
        server, port=0, timestamp_seconds=0.05, config=config or NetworkConfig()
    )


def make_sub(sub_id=1, radius=1_500.0):
    return Subscription(
        sub_id,
        BooleanExpression([Predicate("topic", Operator.EQ, "sale")]),
        radius=radius,
    )


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# SendQueue semantics
# ----------------------------------------------------------------------
class TestSendQueue:
    def test_fifo_below_cap(self):
        q = SendQueue(8)
        for i in range(3):
            assert q.offer(FrameKind.NOTIFICATION, 1, bytes([i]), 0.0) is SendVerdict.OK
        assert [q.pop().frame for _ in range(3)] == [b"\x00", b"\x01", b"\x02"]
        assert q.pop() is None

    def test_new_region_supersedes_queued_region_state(self):
        q = SendQueue(8)
        q.offer(FrameKind.REGION, 1, b"r1", 0.0)
        q.offer(FrameKind.DELTA, 1, b"d1", 0.0)
        q.offer(FrameKind.NOTIFICATION, 1, b"n1", 0.0)
        q.offer(FrameKind.REGION, 2, b"other", 0.0)
        q.offer(FrameKind.REGION, 1, b"r2", 0.0)
        frames = []
        while (entry := q.pop()) is not None:
            frames.append(entry.frame)
        # sub 1's stale region state is gone; everything else held order
        assert frames == [b"n1", b"other", b"r2"]
        assert q.stats.superseded_region_ships == 2
        assert q.stats.frames_shed == 0

    def test_shed_drops_stale_frames_oldest_first(self):
        q = SendQueue(3)
        q.offer(FrameKind.EPHEMERAL, None, b"e1", 0.0)
        q.offer(FrameKind.NOTIFICATION, 1, b"n1", 0.0)
        q.offer(FrameKind.EPHEMERAL, None, b"e2", 0.0)
        verdict = q.offer(FrameKind.NOTIFICATION, 1, b"n2", 0.0)
        # over the cap: the oldest ephemeral goes; back at cap, verdict OK
        assert verdict is SendVerdict.OK
        assert q.stats.frames_shed == 1
        frames = []
        while (entry := q.pop()) is not None:
            frames.append(entry.frame)
        assert frames == [b"n1", b"e2", b"n2"]

    def test_shedding_a_region_breaks_the_delta_chain(self):
        q = SendQueue(2)
        q.offer(FrameKind.REGION, 1, b"r1", 0.0)
        q.offer(FrameKind.NOTIFICATION, 1, b"n1", 0.0)
        q.offer(FrameKind.NOTIFICATION, 1, b"n2", 0.0)  # sheds r1
        assert q.stats.frames_shed == 1
        assert q.region_state_dirty(1)
        # a delta offered now would poison the client: dropped, still dirty
        verdict = q.offer(FrameKind.DELTA, 1, b"d1", 0.0)
        assert verdict in (SendVerdict.OK, SendVerdict.OVER)
        assert q.stats.frames_shed == 2
        assert q.region_state_dirty(1)
        assert all(e.kind is not FrameKind.DELTA for e in list(q._entries))
        # while still over cap, even a fresh push is immediately shed
        # (region state is what overload sacrifices) and the chain stays
        # broken; once the consumer drains, a full push re-syncs it
        q.pop()
        q.pop()
        q.offer(FrameKind.REGION, 1, b"r2", 0.0)
        assert not q.region_state_dirty(1)

    def test_notifications_are_never_shed(self):
        q = SendQueue(2, 100)
        for i in range(10):
            q.offer(FrameKind.NOTIFICATION, 1, bytes([i]), 0.0)
        assert q.stats.frames_shed == 0
        assert len(q) == 10

    def test_hard_cap_is_an_immediate_disconnect(self):
        q = SendQueue(2, 4, grace=60.0)
        verdicts = [
            q.offer(FrameKind.NOTIFICATION, 1, bytes([i]), 0.0) for i in range(4)
        ]
        assert verdicts[-1] is SendVerdict.DISCONNECT
        assert SendVerdict.DISCONNECT not in verdicts[:-1]

    def test_grace_window_escalates_over_to_disconnect(self):
        q = SendQueue(1, 100, grace=1.0)
        assert q.offer(FrameKind.NOTIFICATION, 1, b"a", 10.0) is SendVerdict.OK
        assert q.offer(FrameKind.NOTIFICATION, 1, b"b", 10.0) is SendVerdict.OVER
        assert q.offer(FrameKind.NOTIFICATION, 1, b"c", 10.5) is SendVerdict.OVER
        assert q.offer(FrameKind.NOTIFICATION, 1, b"d", 11.1) is SendVerdict.DISCONNECT

    def test_draining_below_cap_resets_the_grace_clock(self):
        q = SendQueue(2, 100, grace=1.0)
        for i in range(3):
            q.offer(FrameKind.NOTIFICATION, 1, bytes([i]), 10.0)
        q.pop()  # back at the cap: consumer recovered
        assert q.offer(FrameKind.NOTIFICATION, 1, b"x", 20.0) is SendVerdict.OVER
        assert q.offer(FrameKind.NOTIFICATION, 1, b"y", 20.5) is SendVerdict.OVER

    def test_shed_policy_none_never_drops(self):
        q = SendQueue(2, 100, shed=False)
        q.offer(FrameKind.REGION, 1, b"r1", 0.0)
        q.offer(FrameKind.REGION, 1, b"r2", 0.0)
        q.offer(FrameKind.EPHEMERAL, None, b"e", 0.0)
        assert len(q) == 3
        assert q.stats.frames_shed == 0
        assert q.stats.superseded_region_ships == 0

    def test_high_water_reaches_stats(self):
        stats = CommunicationStats()
        q = SendQueue(100, stats=stats)
        for i in range(7):
            q.offer(FrameKind.NOTIFICATION, 1, bytes([i]), 0.0)
        q.pop()
        assert q.high_water == 7
        assert stats.send_queue_high_water == 7


# ----------------------------------------------------------------------
# SendQueue properties
# ----------------------------------------------------------------------
_OP = st.one_of(
    st.tuples(
        st.sampled_from(
            [
                FrameKind.NOTIFICATION,
                FrameKind.REGION,
                FrameKind.DELTA,
                FrameKind.EPHEMERAL,
                FrameKind.CONTROL,
            ]
        ),
        st.integers(min_value=0, max_value=3),
    ),
    st.just("pop"),
)


class TestSendQueueProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        ops=st.lists(_OP, max_size=120),
        soft=st.integers(min_value=1, max_value=8),
        extra=st.integers(min_value=0, max_value=8),
    )
    def test_invariants_over_random_interleavings(self, ops, soft, extra):
        hard = soft + extra if extra else None
        q = SendQueue(soft, hard, grace=1e9)
        offered = 0
        popped = []
        draining = False
        shed_base = set()  # subs whose region frame was shed, not yet re-synced
        notifications_in = []
        for op in ops:
            if op == "pop":
                entry = q.pop()
                if entry is not None:
                    popped.append(entry)
                continue
            if draining:
                # the server stops offering after the first DISCONNECT
                # verdict (the connection is marked draining), so the
                # depth bound below only holds under that contract
                continue
            kind, sub = op
            frame = bytes([offered % 251])
            before_shed = q.stats.frames_shed
            verdict = q.offer(kind, sub, frame, 0.0)
            offered += 1
            if verdict is SendVerdict.DISCONNECT:
                draining = True
            if kind is FrameKind.NOTIFICATION:
                notifications_in.append((sub, frame))
            # mirror the dirty-set contract from the outside
            if kind is FrameKind.REGION:
                shed_base.discard(sub)
            if q.stats.frames_shed > before_shed or q.region_state_dirty(sub):
                shed_base |= {
                    s for s in range(4) if q.region_state_dirty(s)
                }
            shed_base = {s for s in shed_base if q.region_state_dirty(s)}

            # depth never exceeds the hard cap
            assert len(q) <= q.hard_cap
            # no queued delta for a sub with a broken chain
            for entry in list(q._entries):
                if entry.kind is FrameKind.DELTA:
                    assert entry.sub_id not in shed_base

        while (entry := q.pop()) is not None:
            popped.append(entry)
        # notifications are never dropped, and keep their relative order
        notifications_out = [
            (e.sub_id, e.frame)
            for e in popped
            if e.kind is FrameKind.NOTIFICATION
        ]
        assert notifications_out == notifications_in
        # conservation: every accepted frame was popped, shed or superseded
        accepted = len(popped) + q.stats.frames_shed + q.stats.superseded_region_ships
        assert accepted == offered

    @settings(max_examples=100, deadline=None)
    @given(ops=st.lists(_OP, max_size=80))
    def test_uncapped_queue_matches_the_supersede_model(self, ops):
        """With a cap nothing ever reaches, the queue behaves exactly
        like the reference model: plain FIFO, except that a new full
        push removes queued region state for its subscriber."""
        q = SendQueue(10_000)
        model = []  # list of (kind, sub, frame) still pending
        for i, op in enumerate(ops):
            if op == "pop":
                entry = q.pop()
                if model:
                    assert entry is not None
                    assert entry.frame == model.pop(0)[2]
                else:
                    assert entry is None
                continue
            kind, sub = op
            frame = bytes([i % 251, sub])
            q.offer(kind, sub, frame, 0.0)
            if kind is FrameKind.REGION:
                model = [
                    e for e in model
                    if not (e[1] == sub and e[0] in (FrameKind.REGION,
                                                     FrameKind.DELTA))
                ]
            model.append((kind, sub, frame))
        while (entry := q.pop()) is not None:
            assert model, "queue held more frames than the model"
            assert entry.frame == model.pop(0)[2]
        assert model == []
        assert q.stats.frames_shed == 0

    @settings(max_examples=100, deadline=None)
    @given(ops=st.lists(_OP, max_size=80))
    def test_no_shed_no_region_path_preserves_every_frame_in_order(self, ops):
        """Without region frames (nothing to supersede) and with a cap
        nothing reaches, the queue is a plain FIFO."""
        q = SendQueue(10_000)
        sent = []
        popped = []
        for i, op in enumerate(ops):
            if op == "pop":
                entry = q.pop()
                if entry is not None:
                    popped.append(entry.frame)
                continue
            kind, sub = op
            if kind is FrameKind.REGION:
                kind = FrameKind.CONTROL
            frame = bytes([i % 251, sub])
            q.offer(kind, sub, frame, 0.0)
            sent.append(frame)
        while (entry := q.pop()) is not None:
            popped.append(entry.frame)
        assert popped == sent
        assert q.stats.frames_shed == 0
        assert q.stats.superseded_region_ships == 0


# ----------------------------------------------------------------------
# End-to-end over real sockets
# ----------------------------------------------------------------------
class TestGoldenTrace:
    def test_no_shed_path_is_byte_identical(self):
        """With queues that never overflow, the bytes a subscriber reads
        are exactly the frames the server offered, in offer order."""

        async def scenario():
            tcp = make_tcp_server(NetworkConfig(send_queue=10_000))
            recorded = []
            original = tcp._offer

            def tap(conn, kind, sub_id, frame):
                recorded.append((conn, bytes(frame)))
                original(conn, kind, sub_id, frame)

            tcp._offer = tap
            await tcp.start()
            subscriber = ElapsNetworkClient("127.0.0.1", tcp.port)
            publisher = ElapsNetworkClient("127.0.0.1", tcp.port)
            await subscriber.connect()
            await publisher.connect()
            # subscribe without consuming any frames: the byte-identity
            # check reads the raw stream from its very first frame
            await subscriber.send(
                subscribe_message_for(make_sub(), Point(5_000, 5_000), Point(40, 0))
            )
            deadline = asyncio.get_running_loop().time() + 5.0
            while 1 not in tcp._subscriber_conns:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            for i in range(5):
                await publisher.publish(
                    100 + i, {"topic": "sale"}, Point(5_100 + i, 5_000), ttl=100
                )
            await subscriber.send(LocationReport(1, Point(8_000, 8_000), Point(40, 0)))
            await asyncio.sleep(0.3)  # let dispatch and the writers settle

            sub_conn = tcp._subscriber_conns[1]
            offered = b"".join(f for c, f in recorded if c is sub_conn)
            received = b""
            # drain everything already flushed to the socket
            while True:
                try:
                    frame = await asyncio.wait_for(
                        read_frame(subscriber.reader), 0.3
                    )
                except asyncio.TimeoutError:
                    break
                assert frame is not None
                received += frame
            assert received == offered
            assert tcp.server.metrics.frames_shed == 0
            assert tcp.server.metrics.superseded_region_ships == 0
            await subscriber.close()
            await publisher.close()
            await tcp.stop()

        run(scenario())


def _pad(n: int = 2_000) -> str:
    return "x" * n


class TestSlowConsumers:
    def test_stalled_reader_hits_hard_cap_and_is_disconnected(self):
        async def scenario():
            config = NetworkConfig(
                send_queue=16,
                send_queue_hard=32,
                slow_consumer_grace=0.2,
                write_buffer_limit=4096,
            )
            tcp = make_tcp_server(config)
            await tcp.start()
            subscriber = ElapsNetworkClient("127.0.0.1", tcp.port)
            publisher = ElapsNetworkClient("127.0.0.1", tcp.port)
            await subscriber.connect()
            await publisher.connect()
            await subscriber.subscribe(make_sub(), Point(5_000, 5_000), Point(40, 0))
            sock = subscriber.writer.get_extra_info("socket")
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            # the subscriber now reads nothing; flood it with padded
            # notifications (never sheddable) until the hard cap trips
            await publisher.publish_batch(
                [
                    (200 + i, {"topic": "sale", "pad": _pad()}, Point(5_100, 5_000))
                    for i in range(300)
                ]
            )
            metrics = tcp.server.metrics
            deadline = asyncio.get_running_loop().time() + 5.0
            while metrics.slow_consumer_disconnects == 0:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            assert metrics.send_queue_high_water <= config.hard_cap
            await subscriber.close()
            await publisher.close()
            await tcp.stop()

        run(scenario())

    def test_stalled_reader_region_churn_is_superseded_not_grown(self):
        async def scenario():
            config = NetworkConfig(
                send_queue=64,
                send_queue_hard=256,
                slow_consumer_grace=60.0,
                write_buffer_limit=4096,
            )
            tcp = make_tcp_server(config)
            await tcp.start()
            subscriber = ElapsNetworkClient("127.0.0.1", tcp.port)
            control = ElapsNetworkClient("127.0.0.1", tcp.port)
            await subscriber.connect()
            await control.connect()
            await subscriber.subscribe(make_sub(), Point(5_000, 5_000), Point(40, 0))
            sock = subscriber.writer.get_extra_info("socket")
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            # plug the pipe: padded notifications the stalled reader never
            # drains wedge the writer task mid-queue...
            await control.publish_batch(
                [
                    (600 + i, {"topic": "sale", "pad": _pad()}, Point(5_100, 5_000))
                    for i in range(40)
                ]
            )
            # ...then march the subscriber across the space from a second
            # connection: every report constructs and ships a region that
            # queues behind the wedge and supersedes the previous one
            for i in range(10):
                x = 1_000 + (i % 8) * 1_000
                await control.send(
                    LocationReport(1, Point(x, 5_000), Point(40, 0))
                )
            deadline = asyncio.get_running_loop().time() + 5.0
            metrics = tcp.server.metrics
            while metrics.superseded_region_ships == 0:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            # superseding kept the queue shallow: no disconnect needed
            assert metrics.slow_consumer_disconnects == 0
            await subscriber.close()
            await control.close()
            await tcp.stop()

        run(scenario())


class TestAdmissionControl:
    def test_max_connections_refuses_the_surplus(self):
        async def scenario():
            tcp = make_tcp_server(NetworkConfig(max_connections=1))
            await tcp.start()
            first = ElapsNetworkClient("127.0.0.1", tcp.port)
            await first.connect()
            await first.subscribe(make_sub(), Point(5_000, 5_000), Point(40, 0))
            second = ElapsNetworkClient("127.0.0.1", tcp.port)
            await second.connect()
            # the refused connection is closed without a frame
            assert await asyncio.wait_for(read_frame(second.reader), 2.0) is None
            assert tcp.server.metrics.connections_refused == 1
            # the admitted connection still works
            await first.send(LocationReport(1, Point(8_000, 8_000), Point(40, 0)))
            assert await first.receive() is not None
            await first.close()
            await second.close()
            await tcp.stop()

        run(scenario())

    def test_slot_freed_by_disconnect_is_reusable(self):
        async def scenario():
            tcp = make_tcp_server(NetworkConfig(max_connections=1))
            await tcp.start()
            first = ElapsNetworkClient("127.0.0.1", tcp.port)
            await first.connect()
            await first.subscribe(make_sub(), Point(5_000, 5_000), Point(40, 0))
            await first.close()
            await asyncio.sleep(0.1)
            second = ElapsNetworkClient("127.0.0.1", tcp.port)
            await second.connect()
            received = await second.subscribe(
                make_sub(2), Point(5_000, 5_000), Point(40, 0)
            )
            assert received  # ends with a region push: admitted and served
            await second.close()
            await tcp.stop()

        run(scenario())


class TestStopDoesNotLeak:
    def test_stuck_handler_is_cancelled_and_logged(self, caplog):
        async def scenario():
            tcp = make_tcp_server(NetworkConfig(stop_timeout=0.2))
            await tcp.start()

            stuck = asyncio.ensure_future(asyncio.Event().wait())
            tcp._connection_tasks.add(stuck)
            started = asyncio.get_running_loop().time()
            with caplog.at_level("WARNING", logger="repro.system.network"):
                await tcp.stop()
            elapsed = asyncio.get_running_loop().time() - started
            assert stuck.cancelled()
            assert elapsed < 2.0  # bounded by stop_timeout, not leaked
            assert any("cancelling" in r.message for r in caplog.records)

        run(scenario())

    def test_clean_stop_leaves_no_pending_tasks(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            client = ElapsNetworkClient("127.0.0.1", tcp.port)
            await client.connect()
            await client.subscribe(make_sub(), Point(5_000, 5_000), Point(40, 0))
            await tcp.stop()
            await client.close()
            await asyncio.sleep(0)
            leftovers = [
                t for t in asyncio.all_tasks()
                if t is not asyncio.current_task() and not t.done()
            ]
            assert leftovers == []

        run(scenario())


class TestPushErrors:
    def test_write_failure_is_counted_not_swallowed(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            subscriber = ElapsNetworkClient("127.0.0.1", tcp.port)
            publisher = ElapsNetworkClient("127.0.0.1", tcp.port)
            await subscriber.connect()
            await publisher.connect()
            await subscriber.subscribe(make_sub(), Point(5_000, 5_000), Point(40, 0))
            conn = tcp._subscriber_conns[1]

            def broken_write(data):
                raise OSError("wire cut")

            conn.writer.write = broken_write
            await publisher.publish(
                300, {"topic": "sale"}, Point(5_100, 5_000), ttl=100
            )
            metrics = tcp.server.metrics
            deadline = asyncio.get_running_loop().time() + 5.0
            while metrics.push_errors == 0:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            assert metrics.push_errors == 1
            await subscriber.close()
            await publisher.close()
            await tcp.stop()

        run(scenario())


class TestDispatchOffload:
    def test_full_round_trip_with_core_offloaded(self):
        async def scenario():
            tcp = make_tcp_server(NetworkConfig(dispatch_offload=True))
            await tcp.start()
            subscriber = ElapsNetworkClient("127.0.0.1", tcp.port)
            publisher = ElapsNetworkClient("127.0.0.1", tcp.port)
            await subscriber.connect()
            await publisher.connect()
            received = await subscriber.subscribe(
                make_sub(), Point(5_000, 5_000), Point(40, 0)
            )
            assert received  # region push arrived via the loop marshal
            await publisher.publish(
                400, {"topic": "sale"}, Point(5_100, 5_000), ttl=100
            )
            message = await subscriber.receive()
            assert isinstance(message, NotificationMessage)
            snapshot = await publisher.request_stats()
            assert snapshot is not None
            assert dict(snapshot.counters)["notifications"] >= 1
            await subscriber.close()
            await publisher.close()
            await tcp.stop()

        run(scenario())


class TestIngressBackpressure:
    def test_tiny_ingress_queue_preserves_order_and_delivery(self):
        async def scenario():
            tcp = make_tcp_server(NetworkConfig(ingress_queue=1))
            await tcp.start()
            subscriber = ElapsNetworkClient("127.0.0.1", tcp.port)
            publisher = ElapsNetworkClient("127.0.0.1", tcp.port)
            await subscriber.connect()
            await publisher.connect()
            await subscriber.subscribe(make_sub(), Point(5_000, 5_000), Point(40, 0))
            for i in range(20):
                await publisher.publish(
                    500 + i, {"topic": "sale"}, Point(5_100, 5_000), ttl=100
                )
            seen = []
            for _ in range(20):
                message = await subscriber.receive()
                assert isinstance(message, NotificationMessage)
                seen.append(message.event_id & 0xFFFFFFFF)
            assert seen == [500 + i for i in range(20)]
            assert tcp.server.metrics.ingress_queue_high_water >= 1
            await subscriber.close()
            await publisher.close()
            await tcp.stop()

        run(scenario())


# ----------------------------------------------------------------------
# Chaos: shed -> disconnect -> resync, exactly once
# ----------------------------------------------------------------------
@pytest.mark.chaos
class TestSlowConsumerChaos:
    def test_throttled_reader_heals_into_exactly_once_delivery(self):
        """A subscriber behind a throttled proxy is disconnected as a
        slow consumer, reconnects once the throttle lifts, and ends with
        exactly the published set — nothing lost, nothing doubled."""

        async def scenario():
            config = NetworkConfig(
                send_queue=8,
                send_queue_hard=16,
                slow_consumer_grace=0.2,
                write_buffer_limit=4096,
                retain_subscribers=True,
            )
            tcp = make_tcp_server(config)
            await tcp.start()
            async with chaos_proxy("127.0.0.1", tcp.port, FaultConfig()) as proxy:
                grid = Grid(40, SPACE)
                client = ResilientElapsClient(
                    "127.0.0.1",
                    proxy.port,
                    make_sub(),
                    Point(5_000, 5_000),
                    grid=grid,
                    config=ClientConfig(
                        heartbeat_interval=0.2,
                        read_timeout=1.0,
                        reconnect=ReconnectPolicy(base_delay=0.05, max_delay=0.3),
                    ),
                )
                await client.start()
                await client.subscribe(timeout=5.0)

                publisher = ElapsNetworkClient("127.0.0.1", tcp.port)
                await publisher.connect()
                proxy.throttle_downstream = 0.5  # ~2 frames/s reach the client
                published = list(range(1_000, 1_120))
                await publisher.publish_batch(
                    [
                        (eid, {"topic": "sale", "pad": _pad()}, Point(5_100, 5_000))
                        for eid in published
                    ]
                )
                metrics = tcp.server.metrics
                deadline = asyncio.get_running_loop().time() + 15.0
                while metrics.slow_consumer_disconnects == 0:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.05)
                assert metrics.send_queue_high_water <= config.hard_cap

                proxy.throttle_downstream = 0.0  # the network heals
                expected = set(published)
                deadline = asyncio.get_running_loop().time() + 30.0
                while {e.event_id & 0xFFFFFFFF for e in client.events} != expected:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.1)
                # exactly once: every id delivered, no id delivered twice
                ids = [e.event_id for e in client.events]
                assert len(ids) == len(set(ids)) == len(expected)
                assert metrics.resyncs >= 1
                await client.stop()
                await publisher.close()
            await tcp.stop()

        run(scenario())
