"""Process-parallel shard fleet (DESIGN.md §15): worker processes each
owning a full per-shard ElapsServer behind pipe-shipped command messages.

Two layers of coverage:

* plumbing — command round-trips, locate upcalls, metrics/histogram
  marshalling, tracer proxying, crash surfacing, close idempotency;
* the differential — the golden 20-subscriber/200-event trace must stay
  **byte-identical** to the frozen single-server log through a process
  fleet, including across a forced mid-run rebalance (marked ``fleet``:
  these spawn worker processes and dominate the file's runtime).
"""

from __future__ import annotations

import random

import pytest

from repro.core import IGM
from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree
from repro.system import (
    CallbackTransport,
    ProcessExecutor,
    ServerConfig,
    SerialExecutor,
    ShardCall,
    ShardedElapsServer,
    WorkerCrashed,
)

from test_golden_trace import GOLDEN, GROUPS, SPACE
from test_sharding import make_sharded, make_sub, run_sharded_simulation, sale


def make_process_fleet(shards=2, **kwargs):
    return make_sharded(shards, executor=ProcessExecutor(), **kwargs)


# ----------------------------------------------------------------------
# Command-message plumbing
# ----------------------------------------------------------------------
class TestProcessPlumbing:
    def test_publish_round_trip_delivers(self):
        with make_process_fleet(2) as server:
            notes, region = server.subscribe(
                make_sub(radius=3_000.0), Point(5_000, 5_000), Point(0, 0), 0
            )
            assert notes == []
            assert region is not None and not region.is_empty()
            notes = server.publish(sale(10, 5_100, 5_000), now=1)
            assert [n.event.event_id for n in notes] == [10]
            assert server.delivered_ids(1) == frozenset({10})

    def test_delivered_sets_match_serial_fleet(self):
        def drive(server):
            rng = random.Random(3)
            pairs = []
            for sub_id in range(1, 6):
                server.subscribe(
                    make_sub(sub_id=sub_id, radius=2_500.0),
                    Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000)),
                    Point(0, 0),
                    0,
                )
            for event_id in range(60):
                notes = server.publish(
                    sale(event_id, rng.uniform(0, 10_000), rng.uniform(0, 10_000)),
                    now=1 + event_id,
                )
                pairs += [(n.sub_id, n.event.event_id, n.seq) for n in notes]
            server.close()
            return pairs

        serial = drive(make_sharded(2, executor=SerialExecutor()))
        process = drive(make_process_fleet(2))
        assert process == serial

    def test_locate_upcall_reaches_the_coordinator_transport(self):
        asked = []

        def locate(sub_id):
            asked.append(sub_id)
            return Point(5_000, 5_000), Point(0, 0)

        with make_process_fleet(
            2, transport=CallbackTransport(locate=locate)
        ) as server:
            server.subscribe(
                make_sub(radius=3_000.0), Point(5_000, 5_000), Point(0, 0), 0
            )
            server.publish(sale(10, 5_100, 5_000), now=1)
        assert asked  # the worker's arrival ping crossed the pipe

    def test_metrics_and_registry_marshalled_from_workers(self):
        with make_process_fleet(2) as server:
            server.subscribe(
                make_sub(radius=3_000.0), Point(5_000, 5_000), Point(0, 0), 0
            )
            server.publish(sale(10, 5_100, 5_000), now=1)
            merged = server.merged_metrics()
            assert merged.notifications == 1
            assert merged.constructions >= 1
            registry = server.merged_registry()
            assert registry.tracer.histogram("publish").count >= 1

    def test_tracer_attributes_proxy_across_the_pipe(self):
        with make_process_fleet(2) as server:
            worker = server.shard_servers[0]
            worker.tracer.enabled = False
            assert worker.tracer.enabled is False
            worker.tracer.enabled = True
            assert worker.tracer.enabled is True

    def test_remote_corpus_and_subscriber_views(self):
        with make_process_fleet(2) as server:
            server.bootstrap([sale(1, 2_000, 5_000, arrived_at=0)])
            server.subscribe(
                make_sub(radius=3_000.0), Point(2_000, 5_000), Point(0, 0), 0
            )
            matches = list(server.corpus_matches(make_sub().expression))
            assert [e.event_id for e in matches] == [1]
            views = server.shard_servers[0].subscribers
            assert 1 in views and views[1].delivered == frozenset({1})

    def test_worker_errors_carry_type_and_remote_traceback(self):
        with make_process_fleet(2) as server:
            with pytest.raises(KeyError) as info:
                server.shard_servers[0].report_location(
                    999, Point(0, 0), Point(0, 0), 1
                )
            assert "extract_events_in_columns" not in str(info.value)
            assert hasattr(info.value, "_remote_traceback")
            # the fleet survives a failed command
            server.publish(sale(5, 1_000, 5_000), now=1)

    def test_run_rejects_plain_thunks(self):
        with make_process_fleet(2) as server:
            with pytest.raises(TypeError):
                server.executor.run({0: lambda: 1})

    def test_shardcall_without_local_binding_rejects_local_call(self):
        call = ShardCall("publish", (None, 1))
        with pytest.raises(TypeError):
            call()


# ----------------------------------------------------------------------
# Lifecycle and crash surfacing
# ----------------------------------------------------------------------
class TestProcessLifecycle:
    def test_close_is_idempotent_and_joins_workers(self):
        server = make_process_fleet(2)
        handles = list(server.executor._workers.values())
        server.publish(sale(1, 5_000, 5_000), now=1)
        server.close()
        server.close()
        assert all(not h.process.is_alive() for h in handles)

    def test_context_manager_shuts_the_fleet_down(self):
        with make_process_fleet(2) as server:
            handles = list(server.executor._workers.values())
            server.publish(sale(1, 5_000, 5_000), now=1)
        assert all(not h.process.is_alive() for h in handles)

    def test_run_after_close_raises(self):
        server = make_process_fleet(2)
        server.close()
        with pytest.raises(RuntimeError):
            server.executor.call(0, "expire_due_events", 1)

    def test_worker_crash_surfaces_as_workercrashed(self):
        server = make_process_fleet(2)
        server.publish(sale(1, 2_000, 5_000), now=1)
        # murder shard 1, then route an event into its band
        server.executor._workers[1].process.kill()
        with pytest.raises(WorkerCrashed) as info:
            for event_id in range(2, 6):
                server.publish(sale(event_id, 8_000, 5_000), now=2)
        assert info.value.shard_id == 1
        server.close()  # close after a crash must not hang

    def test_crash_detected_even_mid_wait(self):
        server = make_process_fleet(2)
        server.subscribe(
            make_sub(radius=3_000.0), Point(8_000, 5_000), Point(0, 0), 0
        )
        server.executor._workers[1].process.kill()
        with pytest.raises(WorkerCrashed):
            for event_id in range(40):
                server.publish(sale(event_id, 8_000, 5_000), now=1)
        server.close()

    def test_launch_twice_rejected(self):
        server = make_process_fleet(2)
        with pytest.raises(RuntimeError):
            server.executor.launch(
                [lambda t: None], locate=lambda s: None,
                on_region=lambda *a: None, on_delta=lambda *a: None,
            )
        server.close()


# ----------------------------------------------------------------------
# The golden differential through worker processes
# ----------------------------------------------------------------------
@pytest.mark.fleet
class TestProcessGoldenDifferential:
    @pytest.mark.parametrize("batched", [False, True])
    def test_process_fleet_trace_is_byte_identical(self, batched):
        """run() collects every reply before merging, and merges in
        shard order — so even the batched fan-out is deterministic."""
        frozen = GOLDEN.read_bytes()
        trace = run_sharded_simulation(
            4, batched=batched, executor=ProcessExecutor()
        )
        assert trace.encode() == frozen

    def test_process_fleet_survives_a_forced_rebalance(self):
        """Band migration over pipes — extract on the donor, bootstrap
        on the receiver, re-homed subscribers re-sequenced — without
        changing one byte of the delivered trace."""
        frozen = GOLDEN.read_bytes()
        trace = run_sharded_simulation(
            4, batched=False, executor=ProcessExecutor(),
            rebalance_at=GROUPS // 2, bounds=[0, 5, 12, 30, 40],
        )
        assert trace.encode() == frozen
