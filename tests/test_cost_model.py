"""The cost model of Section 3.3 (Equations 1-6) and its lemmas."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import CostModel, SystemStats

positive = st.floats(min_value=0.01, max_value=1e6, allow_nan=False)


class TestSystemStats:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            SystemStats(event_rate=-1.0, total_events=10)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SystemStats(event_rate=1.0, total_events=-10)


class TestEquations:
    def setup_method(self):
        self.model = CostModel(SystemStats(event_rate=2.0, total_events=1000))

    def test_equation3_exit_time(self):
        assert self.model.expected_exit_time(600.0, 60.0) == 10.0

    def test_equation3_parked_user_never_exits(self):
        assert math.isinf(self.model.expected_exit_time(600.0, 0.0))

    def test_equation5_impact_time(self):
        # ti = n / (f * ne) = 1000 / (2 * 10)
        assert self.model.expected_impact_time(10) == 50.0

    def test_equation5_no_pressure_is_infinite(self):
        assert math.isinf(self.model.expected_impact_time(0))

    def test_equation6_balance(self):
        # bm = f*ne*d / (n*vs) = 2*10*600 / (1000*60)
        assert self.model.balance(600.0, 60.0, 10) == pytest.approx(0.2)

    def test_equation1_objective_is_min(self):
        ts = self.model.expected_exit_time(600.0, 60.0)
        ti = self.model.expected_impact_time(10)
        assert self.model.objective(600.0, 60.0, 10) == min(ts, ti)

    def test_balance_zero_when_no_matching_events(self):
        assert self.model.balance(600.0, 60.0, 0) == 0.0

    def test_balance_infinite_when_parked_with_pressure(self):
        assert math.isinf(self.model.balance(600.0, 0.0, 5))

    def test_balance_zero_event_rate(self):
        model = CostModel(SystemStats(event_rate=0.0, total_events=1000))
        assert model.balance(600.0, 60.0, 10) == 0.0


class TestLemmas:
    """Lemma 5: bm grows with the region (d and ne both monotone)."""

    @given(
        d1=positive, d2=positive, ne1=st.integers(0, 100), ne2=st.integers(0, 100),
        speed=positive,
    )
    def test_lemma5_monotonicity(self, d1, d2, ne1, ne2, speed):
        model = CostModel(SystemStats(event_rate=1.5, total_events=500))
        d_small, d_large = sorted((d1, d2))
        ne_small, ne_large = sorted((ne1, ne2))
        assert model.balance(d_small, speed, ne_small) <= model.balance(
            d_large, speed, ne_large
        )

    @given(d=positive, speed=positive, ne=st.integers(1, 100))
    def test_objective_below_both_terms(self, d, speed, ne):
        model = CostModel(SystemStats(event_rate=1.5, total_events=500))
        objective = model.objective(d, speed, ne)
        assert objective <= model.expected_exit_time(d, speed)
        assert objective <= model.expected_impact_time(ne)

    def test_lemma6_7_objective_peaks_at_balance_one(self):
        """f_obj over a nested family of regions is maximised where bm
        crosses 1 — the paper's termination rule."""
        model = CostModel(SystemStats(event_rate=2.0, total_events=1000))
        speed = 50.0
        # nested candidate regions: d grows, ne grows
        candidates = [(d, ne) for d, ne in zip(range(100, 2000, 100), range(1, 20))]
        objectives = [model.objective(d, speed, ne) for d, ne in candidates]
        balances = [model.balance(d, speed, ne) for d, ne in candidates]
        best = max(range(len(candidates)), key=objectives.__getitem__)
        # the maximiser sits where bm is nearest to 1
        crossing = min(range(len(candidates)), key=lambda i: abs(balances[i] - 1.0))
        assert abs(best - crossing) <= 1
