"""Differential suite: index matching vs the brute-force predicate oracle.

Pits ``SubscriptionIndex.match_event`` and ``match_batch`` against a
total, per-clause reimplementation of BE-match built directly on
``Predicate.matches``.  The strategies deliberately generate the
adversarial shapes behind the PR 9 bugfixes: duplicate IN members
(bypassing frozenset normalisation), mixed-type operands, bool/int/float
aliases, multi-clause DNF, and multiple predicates per attribute.

Runs under the ``differential`` marker; ``DIFFERENTIAL_EXAMPLES``
controls the per-test example budget (default 25).
"""

from __future__ import annotations

import os
from typing import Dict, Sequence

import pytest
from hypothesis import given, settings, strategies as st

from repro.expressions import (
    BooleanExpression,
    DnfExpression,
    Event,
    Operator,
    Predicate,
    Subscription,
    clauses_of,
)
from repro.geometry import Point
from repro.index import SubscriptionIndex

pytestmark = pytest.mark.differential

EXAMPLES = int(os.environ.get("DIFFERENTIAL_EXAMPLES", "25"))
DIFF_SETTINGS = settings(max_examples=EXAMPLES, deadline=None)

ATTRIBUTES = ("a", "b", "c", "d")
# Aliased numerics, floats between ints, strings, and the empty string.
VALUES = (0, 1, 2, 3, True, False, 0.5, 1.0, 2.5, "x", "y", "")
NUMERIC = tuple(v for v in VALUES if isinstance(v, (int, float)))
STRINGS = tuple(v for v in VALUES if isinstance(v, str))

SCALAR_OPS = (
    Operator.EQ,
    Operator.NE,
    Operator.LT,
    Operator.LE,
    Operator.GT,
    Operator.GE,
)


@st.composite
def predicates(draw):
    attribute = draw(st.sampled_from(ATTRIBUTES))
    kind = draw(st.sampled_from(("scalar", "between", "in", "not_in", "raw_in")))
    if kind == "scalar":
        return Predicate(attribute, draw(st.sampled_from(SCALAR_OPS)), draw(st.sampled_from(VALUES)))
    if kind == "between":
        pool = draw(st.sampled_from((NUMERIC, STRINGS)))
        low, high = sorted(draw(st.lists(st.sampled_from(pool), min_size=2, max_size=2)))
        return Predicate(attribute, Operator.BETWEEN, (low, high))
    members = tuple(draw(st.lists(st.sampled_from(VALUES), min_size=1, max_size=4)))
    if kind == "not_in":
        return Predicate(attribute, Operator.NOT_IN, frozenset(members))
    predicate = Predicate(attribute, Operator.IN, frozenset(members))
    if kind == "raw_in":
        # Operand kept as a literal tuple — duplicates and aliased
        # members (True vs 1) survive, the satellite-1 bug surface.
        object.__setattr__(predicate, "operand", members)
    return predicate


@st.composite
def subscriptions(draw, sub_id):
    clause_count = draw(st.integers(min_value=1, max_value=3))
    clauses = [
        # Repeated attributes allowed: multiple predicates per attribute.
        BooleanExpression(tuple(draw(st.lists(predicates(), min_size=1, max_size=3))))
        for _ in range(clause_count)
    ]
    if clause_count == 1:
        expression = clauses[0]
    else:
        expression = DnfExpression(clauses)
    return Subscription(sub_id, expression, 1000.0)


@st.composite
def events(draw, event_id):
    attrs = draw(
        st.dictionaries(
            st.sampled_from(ATTRIBUTES),
            st.sampled_from(VALUES),
            min_size=1,
            max_size=len(ATTRIBUTES),
        )
    )
    return Event(event_id, attrs, Point(0.0, 0.0))


def _clause_satisfied(clause: Sequence[Predicate], attributes: Dict[str, object]) -> bool:
    return all(
        predicate.attribute in attributes
        and predicate.matches(attributes[predicate.attribute])
        for predicate in clause
    )


def oracle_matches(subscription: Subscription, event: Event) -> bool:
    return any(
        _clause_satisfied(clause, event.attributes)
        for clause in clauses_of(subscription.expression)
    )


@DIFF_SETTINGS
@given(data=st.data())
def test_match_event_agrees_with_oracle(data):
    subs = [data.draw(subscriptions(sub_id)) for sub_id in range(data.draw(st.integers(1, 12)))]
    index = SubscriptionIndex()
    for sub in subs:
        index.insert(sub)
    for event_id in range(data.draw(st.integers(1, 8))):
        event = data.draw(events(event_id))
        got = {s.sub_id for s in index.match_event(event)}
        expected = {s.sub_id for s in subs if oracle_matches(s, event)}
        assert got == expected, event.attributes


@DIFF_SETTINGS
@given(data=st.data())
def test_match_batch_is_byte_identical_to_match_event(data):
    subs = [data.draw(subscriptions(sub_id)) for sub_id in range(data.draw(st.integers(1, 12)))]
    index = SubscriptionIndex()
    for sub in subs:
        index.insert(sub)
    batch = [data.draw(events(event_id)) for event_id in range(data.draw(st.integers(1, 10)))]
    per_event = [index.match_event(event) for event in batch]
    batched = index.match_batch(batch)
    # Exact list equality: same subscriptions in the same order.
    assert [[s.sub_id for s in row] for row in batched] == [
        [s.sub_id for s in row] for row in per_event
    ]


@DIFF_SETTINGS
@given(data=st.data())
def test_match_survives_churn(data):
    subs = [data.draw(subscriptions(sub_id)) for sub_id in range(data.draw(st.integers(2, 12)))]
    index = SubscriptionIndex()
    for sub in subs:
        index.insert(sub)
    removed = set()
    for sub in subs[:: 2]:
        index.delete(sub)
        removed.add(sub.sub_id)
    remaining = [s for s in subs if s.sub_id not in removed]
    for event_id in range(data.draw(st.integers(1, 6))):
        event = data.draw(events(event_id))
        got = {s.sub_id for s in index.match_event(event)}
        expected = {s.sub_id for s in remaining if oracle_matches(s, event)}
        assert got == expected


@DIFF_SETTINGS
@given(data=st.data())
def test_batch_sizes_do_not_change_results(data):
    subs = [data.draw(subscriptions(sub_id)) for sub_id in range(6)]
    index = SubscriptionIndex()
    for sub in subs:
        index.insert(sub)
    batch = [data.draw(events(event_id)) for event_id in range(12)]
    whole = [[s.sub_id for s in row] for row in index.match_batch(batch)]
    chunk = data.draw(st.sampled_from((1, 3, 5)))
    chunked = []
    for start in range(0, len(batch), chunk):
        chunked.extend(
            [s.sub_id for s in row] for row in index.match_batch(batch[start : start + chunk])
        )
    assert chunked == whole
