"""Stateful property tests (hypothesis rule-based state machines).

Two long-lived mutable structures carry the system's correctness burden
under churn: the BEQ-Tree (events arrive and expire constantly) and the
impact-region index (regions are replaced on every reconstruction).
These machines hammer them with random operation sequences and check
them against a trivial model after every step.
"""

from __future__ import annotations

import random

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core import IGM
from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree, ImpactRegionIndex
from repro.system import CallbackTransport, ServerConfig, ElapsServer

SPACE = Rect(0, 0, 1000, 1000)

QUERY = Subscription(
    1,
    BooleanExpression([Predicate("k", Operator.LE, 5)]),
    radius=300.0,
)


class BEQTreeMachine(RuleBasedStateMachine):
    """Insert/delete churn against a dict model, with match audits."""

    def __init__(self) -> None:
        super().__init__()
        self.tree = BEQTree(SPACE, emax=4)
        self.model: dict = {}
        self.next_id = 0

    @rule(
        x=st.floats(min_value=0, max_value=1000),
        y=st.floats(min_value=0, max_value=1000),
        value=st.integers(min_value=0, max_value=9),
    )
    def insert(self, x, y, value):
        event = Event(self.next_id, {"k": value}, Point(x, y))
        self.next_id += 1
        self.tree.insert(event)
        self.model[event.event_id] = event

    @rule(data=st.data())
    def delete(self, data):
        if not self.model:
            return
        event_id = data.draw(st.sampled_from(sorted(self.model)))
        event = self.model.pop(event_id)
        self.tree.delete(event)

    @invariant()
    def size_matches_model(self):
        assert len(self.tree) == len(self.model)

    @invariant()
    def match_agrees_with_model(self):
        at = Point(500, 500)
        expected = sorted(
            e.event_id
            for e in self.model.values()
            if QUERY.matches(e, at)
        )
        got = sorted(e.event_id for e in self.tree.match(QUERY, at))
        assert got == expected

    @invariant()
    def leaf_capacity_respected(self):
        for leaf in self.tree.leaves():
            assert len(leaf) <= self.tree.emax or self.tree.depth() >= self.tree.max_depth


class ImpactIndexMachine(RuleBasedStateMachine):
    """Region replacement churn against a dict-of-sets model."""

    def __init__(self) -> None:
        super().__init__()
        self.index = ImpactRegionIndex()
        self.model: dict = {}

    @rule(
        sub_id=st.integers(min_value=0, max_value=8),
        cells=st.sets(
            st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=8
        ),
    )
    def replace(self, sub_id, cells):
        self.index.replace(sub_id, cells)
        self.model[sub_id] = frozenset(cells)

    @rule(sub_id=st.integers(min_value=0, max_value=8))
    def remove(self, sub_id):
        self.index.remove(sub_id)
        self.model.pop(sub_id, None)

    @invariant()
    def lookups_agree_with_model(self):
        for i in range(6):
            for j in range(6):
                cell = (i, j)
                expected = {s for s, cells in self.model.items() if cell in cells}
                assert set(self.index.subscribers_covering(cell)) == expected
                for sub_id in range(9):
                    assert self.index.covers(sub_id, cell) == (
                        sub_id in self.model and cell in self.model[sub_id]
                    )


class _ClientModel:
    """The durable client side: where it is and what it actually holds."""

    def __init__(self, subscription: Subscription, location: Point) -> None:
        self.subscription = subscription
        self.location = location
        self.received: set = set()

    def deliver(self, notifications, dropper) -> None:
        """Hand notifications to the client; ``dropper`` plays the network.

        The exactly-once half of the delivery contract is checked right
        here: the server must never ship an event the client already
        holds, whatever interleaving of losses and reconnects happened.
        """
        for notification in notifications:
            event_id = notification.event.event_id
            assert event_id not in self.received, (
                f"event {event_id} shipped twice to sub "
                f"{self.subscription.sub_id}"
            )
            if not dropper():
                self.received.add(event_id)


class ReconnectResyncMachine(RuleBasedStateMachine):
    """Publish/move/reconnect churn with a lossy network in between.

    Drops are decided by hypothesis, so shrinking finds the minimal
    fault interleaving that breaks either delivery guarantee: at-most-
    once is asserted on every delivery, at-least-once (for events
    matching at the final location) after a lossless resync in teardown.
    """

    def __init__(self) -> None:
        super().__init__()
        self.server = ElapsServer(
            Grid(10, SPACE),
            IGM(max_cells=100),
            ServerConfig(initial_rate=1.0),
            event_index=BEQTree(SPACE, emax=8))
        self.clients = {}
        for sub_id, (threshold, radius) in enumerate([(4, 300.0), (7, 400.0)]):
            subscription = Subscription(
                sub_id,
                BooleanExpression([Predicate("k", Operator.LE, threshold)]),
                radius=radius,
            )
            client = _ClientModel(subscription, Point(500.0, 500.0))
            self.clients[sub_id] = client
        self.server.transport = CallbackTransport(locate=lambda sub_id: (
            self.clients[sub_id].location,
            Point(0.0, 0.0),
        ))
        for client in self.clients.values():
            notifications, _ = self.server.subscribe(
                client.subscription, client.location, Point(0.0, 0.0), now=0
            )
            client.deliver(notifications, lambda: False)
        self.now = 0
        self.next_event_id = 0

    def _dropper(self, data):
        return lambda: data.draw(st.booleans(), label="drop")

    @rule(
        x=st.floats(min_value=0, max_value=1000),
        y=st.floats(min_value=0, max_value=1000),
        k=st.integers(min_value=0, max_value=9),
        data=st.data(),
    )
    def publish(self, x, y, k, data):
        self.now += 1
        event = Event(self.next_event_id, {"k": k}, Point(x, y))
        self.next_event_id += 1
        notifications = self.server.publish(event, self.now)
        for sub_id, client in self.clients.items():
            client.deliver(
                [n for n in notifications if n.sub_id == sub_id],
                self._dropper(data),
            )

    @rule(
        sub_id=st.integers(min_value=0, max_value=1),
        x=st.floats(min_value=0, max_value=1000),
        y=st.floats(min_value=0, max_value=1000),
        data=st.data(),
    )
    def move(self, sub_id, x, y, data):
        self.now += 1
        client = self.clients[sub_id]
        client.location = Point(x, y)
        notifications, _ = self.server.report_location(
            sub_id, client.location, Point(0.0, 0.0), self.now
        )
        client.deliver(notifications, self._dropper(data))

    @rule(sub_id=st.integers(min_value=0, max_value=1), data=st.data())
    def reconnect(self, sub_id, data):
        """A dead connection: resubscribe, then resync the received set."""
        self.now += 1
        client = self.clients[sub_id]
        notifications, _ = self.server.subscribe(
            client.subscription, client.location, Point(0.0, 0.0), self.now
        )
        client.deliver(notifications, self._dropper(data))
        notifications, _ = self.server.resync(
            sub_id,
            client.location,
            Point(0.0, 0.0),
            tuple(sorted(client.received)),
            self.now,
        )
        # the resync redeliveries themselves may be lost again
        client.deliver(notifications, self._dropper(data))

    def teardown(self):
        self.now += 1
        for sub_id, client in self.clients.items():
            notifications, _ = self.server.resync(
                sub_id,
                client.location,
                Point(0.0, 0.0),
                tuple(sorted(client.received)),
                self.now,
            )
            client.deliver(notifications, lambda: False)
            expected = {
                event.event_id
                for event in self.server._events_by_id.values()
                if client.subscription.matches(event, at=client.location)
            }
            missing = expected - client.received
            assert not missing, (
                f"sub {sub_id} never saw matching events {sorted(missing)}"
            )


TestBEQTreeMachine = BEQTreeMachine.TestCase
TestBEQTreeMachine.settings = settings(max_examples=20, stateful_step_count=30, deadline=None)

TestImpactIndexMachine = ImpactIndexMachine.TestCase
TestImpactIndexMachine.settings = settings(max_examples=15, stateful_step_count=20, deadline=None)

TestReconnectResyncMachine = ReconnectResyncMachine.TestCase
TestReconnectResyncMachine.settings = settings(
    max_examples=10, stateful_step_count=25, deadline=None
)
