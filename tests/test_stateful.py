"""Stateful property tests (hypothesis rule-based state machines).

Two long-lived mutable structures carry the system's correctness burden
under churn: the BEQ-Tree (events arrive and expire constantly) and the
impact-region index (regions are replaced on every reconstruction).
These machines hammer them with random operation sequences and check
them against a trivial model after every step.
"""

from __future__ import annotations

import random

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Point, Rect
from repro.index import BEQTree, ImpactRegionIndex

SPACE = Rect(0, 0, 1000, 1000)

QUERY = Subscription(
    1,
    BooleanExpression([Predicate("k", Operator.LE, 5)]),
    radius=300.0,
)


class BEQTreeMachine(RuleBasedStateMachine):
    """Insert/delete churn against a dict model, with match audits."""

    def __init__(self) -> None:
        super().__init__()
        self.tree = BEQTree(SPACE, emax=4)
        self.model: dict = {}
        self.next_id = 0

    @rule(
        x=st.floats(min_value=0, max_value=1000),
        y=st.floats(min_value=0, max_value=1000),
        value=st.integers(min_value=0, max_value=9),
    )
    def insert(self, x, y, value):
        event = Event(self.next_id, {"k": value}, Point(x, y))
        self.next_id += 1
        self.tree.insert(event)
        self.model[event.event_id] = event

    @rule(data=st.data())
    def delete(self, data):
        if not self.model:
            return
        event_id = data.draw(st.sampled_from(sorted(self.model)))
        event = self.model.pop(event_id)
        self.tree.delete(event)

    @invariant()
    def size_matches_model(self):
        assert len(self.tree) == len(self.model)

    @invariant()
    def match_agrees_with_model(self):
        at = Point(500, 500)
        expected = sorted(
            e.event_id
            for e in self.model.values()
            if QUERY.matches(e, at)
        )
        got = sorted(e.event_id for e in self.tree.match(QUERY, at))
        assert got == expected

    @invariant()
    def leaf_capacity_respected(self):
        for leaf in self.tree.leaves():
            assert len(leaf) <= self.tree.emax or self.tree.depth() >= self.tree.max_depth


class ImpactIndexMachine(RuleBasedStateMachine):
    """Region replacement churn against a dict-of-sets model."""

    def __init__(self) -> None:
        super().__init__()
        self.index = ImpactRegionIndex()
        self.model: dict = {}

    @rule(
        sub_id=st.integers(min_value=0, max_value=8),
        cells=st.sets(
            st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=8
        ),
    )
    def replace(self, sub_id, cells):
        self.index.replace(sub_id, cells)
        self.model[sub_id] = frozenset(cells)

    @rule(sub_id=st.integers(min_value=0, max_value=8))
    def remove(self, sub_id):
        self.index.remove(sub_id)
        self.model.pop(sub_id, None)

    @invariant()
    def lookups_agree_with_model(self):
        for i in range(6):
            for j in range(6):
                cell = (i, j)
                expected = {s for s, cells in self.model.items() if cell in cells}
                assert set(self.index.subscribers_covering(cell)) == expected
                for sub_id in range(9):
                    assert self.index.covers(sub_id, cell) == (
                        sub_id in self.model and cell in self.model[sub_id]
                    )


TestBEQTreeMachine = BEQTreeMachine.TestCase
TestBEQTreeMachine.settings = settings(max_examples=20, stateful_step_count=30, deadline=None)

TestImpactIndexMachine = ImpactIndexMachine.TestCase
TestImpactIndexMachine.settings = settings(max_examples=15, stateful_step_count=20, deadline=None)
