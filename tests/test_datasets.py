"""Workload generators: determinism, distribution shape, selectivity."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.datasets import (
    FoursquareLikeGenerator,
    LocationSampler,
    TwitterLikeConfig,
    TwitterLikeGenerator,
    Vocabulary,
)
from repro.geometry import Rect

SPACE = Rect(0, 0, 50_000, 50_000)


class TestVocabulary:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            Vocabulary(0)

    def test_zipf_weights_decreasing_and_normalised(self):
        vocab = Vocabulary(100, skew=1.0)
        assert vocab.weights == sorted(vocab.weights, reverse=True)
        assert sum(vocab.weights) == pytest.approx(1.0)

    def test_sampling_follows_skew(self):
        vocab = Vocabulary(50, skew=1.2)
        rng = random.Random(0)
        counts = {}
        for _ in range(5000):
            word = vocab.sample(rng)
            counts[word] = counts.get(word, 0) + 1
        assert counts.get("kw0", 0) > counts.get("kw40", 0)

    def test_sample_distinct(self):
        vocab = Vocabulary(20)
        rng = random.Random(1)
        words = vocab.sample_distinct(rng, 10)
        assert len(words) == len(set(words)) == 10

    def test_sample_distinct_overflow_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary(5).sample_distinct(random.Random(0), 6)

    def test_top_restriction(self):
        vocab = Vocabulary(100)
        head = vocab.top(10)
        assert len(head) == 10
        assert sum(head.weights) == pytest.approx(1.0)

    def test_frequency_hint_positive(self):
        hint = Vocabulary(10).frequency_hint()
        assert all(v >= 1 for v in hint.values())
        assert hint["kw0"] > hint["kw9"]


class TestLocationSampler:
    def test_samples_stay_in_space(self):
        sampler = LocationSampler(SPACE, seed=3)
        rng = random.Random(4)
        for _ in range(500):
            assert SPACE.contains_point(sampler.sample(rng))

    def test_clustering_exists(self):
        sampler = LocationSampler(SPACE, hotspots=4, uniform_fraction=0.0, seed=5)
        rng = random.Random(6)
        points = [sampler.sample(rng) for _ in range(400)]
        # each point should be near one of the 4 hotspot centres
        near = sum(
            1
            for p in points
            if min(p.distance_to(h.center) for h in sampler.hotspots) < 10_000
        )
        assert near > 380

    def test_uniform_fraction_validation(self):
        with pytest.raises(ValueError):
            LocationSampler(SPACE, uniform_fraction=1.5)


class TestTwitterLike:
    def test_determinism(self):
        a = TwitterLikeGenerator(SPACE, seed=7).events(50)
        b = TwitterLikeGenerator(SPACE, seed=7).events(50)
        assert [(e.event_id, dict(e.attributes), e.location) for e in a] == [
            (e.event_id, dict(e.attributes), e.location) for e in b
        ]

    def test_different_seeds_differ(self):
        a = TwitterLikeGenerator(SPACE, seed=7).events(50)
        b = TwitterLikeGenerator(SPACE, seed=8).events(50)
        assert [dict(e.attributes) for e in a] != [dict(e.attributes) for e in b]

    def test_keyword_counts_in_range(self):
        config = TwitterLikeConfig(min_keywords=3, max_keywords=6)
        events = TwitterLikeGenerator(SPACE, config, seed=1).events(200)
        assert all(3 <= len(e) <= 6 for e in events)

    def test_event_ids_consecutive(self):
        events = TwitterLikeGenerator(SPACE, seed=1).events(10, start_id=100)
        assert [e.event_id for e in events] == list(range(100, 110))

    def test_ttl_stamps_expiry(self):
        events = TwitterLikeGenerator(SPACE, seed=1).events(5, arrived_at=10, ttl=50)
        assert all(e.expires_at == 60 for e in events)

    def test_subscription_sizes(self):
        subs = TwitterLikeGenerator(SPACE, seed=1).subscriptions(30, size=4)
        assert all(len(s) == 4 for s in subs)

    def test_selectivity_band(self):
        """The tuned default workload: delta=3 subscriptions match a small
        but non-trivial fraction of events."""
        generator = TwitterLikeGenerator(SPACE, seed=1)
        events = generator.events(4000)
        subs = generator.subscriptions(30, size=3)
        rates = [sum(s.be_matches(e) for e in events) / len(events) for s in subs]
        assert 0.0005 < statistics.median(rates) < 0.05

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TwitterLikeConfig(min_keywords=5, max_keywords=3)
        with pytest.raises(ValueError):
            TwitterLikeConfig(vocabulary_size=10, subscription_pool=20)


class TestFoursquareLike:
    def test_determinism(self):
        a = FoursquareLikeGenerator(SPACE, seed=2).events(30)
        b = FoursquareLikeGenerator(SPACE, seed=2).events(30)
        assert [dict(e.attributes) for e in a] == [dict(e.attributes) for e in b]

    def test_core_schema_present(self):
        events = FoursquareLikeGenerator(SPACE, seed=2).events(50)
        for event in events:
            assert "category" in event.attributes
            assert "rating" in event.attributes
            assert 1 <= event.attributes["price_tier"] <= 4

    def test_attribute_richness(self):
        events = FoursquareLikeGenerator(SPACE, seed=2).events(100)
        mean_attrs = statistics.mean(len(e) for e in events)
        assert mean_attrs > 9  # schema-rich venues

    def test_subscriptions_match_some_venues(self):
        generator = FoursquareLikeGenerator(SPACE, seed=2)
        events = generator.events(2000)
        subs = generator.subscriptions(20, size=3)
        rates = [sum(s.be_matches(e) for e in events) / len(events) for s in subs]
        assert statistics.median(rates) > 0.001

    def test_subscription_attrs_unique_per_sub(self):
        subs = FoursquareLikeGenerator(SPACE, seed=2).subscriptions(20, size=4)
        for sub in subs:
            attrs = [p.attribute for p in sub.expression]
            assert len(attrs) == len(set(attrs))

    def test_frequency_hint_ranks_core_highest(self):
        generator = FoursquareLikeGenerator(SPACE, seed=2)
        hint = generator.frequency_hint()
        assert hint["category"] > hint["amenity_0"]
