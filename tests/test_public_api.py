"""The public API surface: exports resolve, the README quickstart runs,
and every public item carries documentation."""

from __future__ import annotations

import ast
import pathlib

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_all_is_sorted_and_unique(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_version(self):
        assert repro.__version__

    def test_subpackage_alls_resolve(self):
        import repro.core, repro.datasets, repro.expressions, repro.geometry
        import repro.index, repro.system, repro.trajectories

        for module in (repro.core, repro.datasets, repro.expressions,
                       repro.geometry, repro.index, repro.system,
                       repro.trajectories):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (module.__name__, name)


class TestReadmeQuickstart:
    def test_quickstart_snippet_works(self):
        """The code block in README.md §Quickstart, executed verbatim-ish."""
        from repro import (BEQTree, BooleanExpression, ElapsServer, Event, Grid,
                           IGM, Operator, Point, Predicate, Rect, Subscription)

        space = Rect(0, 0, 50_000, 50_000)
        server = ElapsServer(Grid(120, space), IGM(max_cells=2_000),
                             event_index=BEQTree(space, emax=256))
        interest = BooleanExpression([
            Predicate("name", Operator.EQ, "shoes"),
            Predicate("model", Operator.EQ, "Jordan AJ23"),
            Predicate("price", Operator.LT, 1000),
        ])
        sub = Subscription(1, interest, radius=2_000)
        matches, safe_region = server.subscribe(sub, Point(25_000, 25_000),
                                                Point(60, 0), now=0)
        assert matches == []
        assert not safe_region.is_empty()
        offer = Event(7, {"name": "shoes", "model": "Jordan AJ23", "price": 650},
                      Point(25_400, 25_200))
        notifications = server.publish(offer, now=1)
        assert [n.sub_id for n in notifications] == [1]


class TestDocumentationCoverage:
    def test_every_public_item_has_a_docstring(self):
        src = pathlib.Path(repro.__file__).parent
        undocumented = []
        for path in sorted(src.rglob("*.py")):
            tree = ast.parse(path.read_text())
            if not ast.get_docstring(tree):
                undocumented.append(f"{path.name}: module")
            for node in ast.walk(tree):
                if not isinstance(node, (ast.ClassDef, ast.FunctionDef)):
                    continue
                if node.name.startswith("_"):
                    continue
                if not ast.get_docstring(node):
                    undocumented.append(f"{path.name}:{node.lineno}: {node.name}")
        # nested closures are implementation detail; everything else is
        # required to carry documentation
        allowed = {"flush_run", "dominated", "add_vertical", "add_horizontal"}
        real = [u for u in undocumented if u.split()[-1] not in allowed]
        assert real == [], real
