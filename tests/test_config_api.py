"""The redesigned server API: ServerConfig and the Transport seam.

Covers the migration contract of the config/transport redesign:

* :class:`ServerConfig` — frozen, validated, copy-with-changes;
* the deprecated ``ElapsServer`` keyword arguments still work but warn,
  and build the exact same config;
* the deprecated ``locator``/``region_sink``/``delta_sink`` attributes
  still work (getter and setter both warn) and are implemented on top of
  a :class:`CallbackTransport`;
* :class:`CallbackTransport` is behaviourally equivalent to a hand-rolled
  :class:`Transport` subclass, including the ship_delta -> ship_region
  fallback the legacy sink pair implemented.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import IGM
from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree
from repro.system import CallbackTransport, ElapsServer, ServerConfig, Transport

SPACE = Rect(0, 0, 10_000, 10_000)


def make_server(config=None, **kwargs):
    return ElapsServer(
        Grid(40, SPACE),
        IGM(max_cells=400),
        config or ServerConfig(initial_rate=1.0),
        event_index=BEQTree(SPACE, emax=32),
        **kwargs,
    )


def make_sub(sub_id=1, radius=1_500.0):
    return Subscription(
        sub_id,
        BooleanExpression([Predicate("topic", Operator.EQ, "sale")]),
        radius=radius,
    )


def sale(event_id, x, y):
    return Event(event_id, {"topic": "sale"}, Point(x, y))


# ----------------------------------------------------------------------
# ServerConfig
# ----------------------------------------------------------------------
class TestServerConfig:
    def test_defaults_round_trip_onto_the_server(self):
        config = ServerConfig(
            matching_mode="full",
            rate_window=25,
            initial_rate=3.0,
            min_speed=2.0,
            measure_bytes=True,
            use_impact_region=False,
            repair=True,
        )
        server = make_server(config)
        assert server.config is config
        assert server.matching_mode == "full"
        assert server.rate_window == 25
        assert server.initial_rate == 3.0
        assert server.min_speed == 2.0
        assert server.measure_bytes is True
        assert server.metrics.bytes_measured is True
        assert server.use_impact_region is False
        assert server.repair is True

    def test_frozen(self):
        config = ServerConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.repair = True

    def test_with_copies(self):
        base = ServerConfig(initial_rate=1.0)
        changed = base.with_(repair=True)
        assert changed.repair is True
        assert changed.initial_rate == 1.0
        assert base.repair is False  # original untouched

    def test_invalid_matching_mode_rejected(self):
        with pytest.raises(ValueError, match="psychic"):
            ServerConfig(matching_mode="psychic")


# ----------------------------------------------------------------------
# Deprecated keyword arguments
# ----------------------------------------------------------------------
class TestLegacyKwargs:
    def test_legacy_kwargs_warn_and_build_the_same_config(self):
        with pytest.warns(DeprecationWarning, match="initial_rate"):
            server = ElapsServer(
                Grid(40, SPACE),
                IGM(max_cells=400),
                event_index=BEQTree(SPACE, emax=32),
                initial_rate=2.0,
                repair=True,
            )
        assert server.config == ServerConfig(initial_rate=2.0, repair=True)

    def test_legacy_kwargs_layer_on_an_explicit_config(self):
        with pytest.warns(DeprecationWarning):
            server = ElapsServer(
                Grid(40, SPACE),
                IGM(max_cells=400),
                ServerConfig(measure_bytes=True),
                event_index=BEQTree(SPACE, emax=32),
                initial_rate=2.0,
            )
        assert server.config == ServerConfig(measure_bytes=True, initial_rate=2.0)

    def test_unknown_kwarg_is_a_type_error(self):
        with pytest.raises(TypeError, match="warp_speed"):
            ElapsServer(Grid(40, SPACE), IGM(max_cells=400), warp_speed=9)


# ----------------------------------------------------------------------
# Deprecated hook attributes
# ----------------------------------------------------------------------
class TestLegacyHooks:
    @pytest.mark.parametrize("name", ["locator", "region_sink", "delta_sink"])
    def test_getter_and_setter_both_warn(self, name):
        server = make_server()
        with pytest.warns(DeprecationWarning, match=name):
            setattr(server, name, lambda *args: None)
        with pytest.warns(DeprecationWarning, match=name):
            getattr(server, name)

    def test_assigned_hooks_drive_the_transport(self):
        server = make_server()
        shipped = {}
        pings = []

        def locate(sub_id):
            pings.append(sub_id)
            return Point(5_000, 5_000), Point(20, 0)

        with pytest.warns(DeprecationWarning):
            server.locator = locate
        with pytest.warns(DeprecationWarning):
            server.region_sink = lambda sub_id, region: shipped.update(
                {sub_id: region}
            )
        assert isinstance(server.transport, CallbackTransport)

        sub = make_sub()
        server.subscribe(sub, Point(5_000, 5_000), Point(20, 0), now=0)
        server.publish(sale(10, 5_400, 5_000), now=1)
        assert pings  # the event-arrival ping went through the shim
        assert sub.sub_id in shipped  # the rebuilt region was shipped


# ----------------------------------------------------------------------
# Transport equivalence
# ----------------------------------------------------------------------
class RecordingTransport(Transport):
    """A hand-rolled Transport, the class-based migration target."""

    def __init__(self):
        self.regions = []
        self.deltas = []
        self.pings = []

    def ship_region(self, sub_id, region):
        self.regions.append((sub_id, frozenset(region.cells), region.complement))

    def ship_delta(self, sub_id, removed, region):
        self.deltas.append((sub_id, frozenset(removed)))

    def locate(self, sub_id):
        self.pings.append(sub_id)
        return Point(5_000, 5_000), Point(20, 0)


def drive(transport):
    """One fixed workload: subscribe, in-radius hit, out-of-radius hit."""
    server = make_server(
        ServerConfig(initial_rate=1.0, repair=True), transport=transport
    )
    server.subscribe(make_sub(), Point(5_000, 5_000), Point(20, 0), now=0)
    server.publish(sale(10, 5_400, 5_000), now=1)   # in radius: rebuild
    server.publish(sale(11, 7_600, 5_000), now=2)   # out of radius: repair
    return server


class TestTransportEquivalence:
    def test_callback_transport_matches_a_transport_subclass(self):
        subclass = RecordingTransport()
        drive(subclass)

        regions, deltas, pings = [], [], []
        callbacks = CallbackTransport(
            ship_region=lambda sub_id, region: regions.append(
                (sub_id, frozenset(region.cells), region.complement)
            ),
            ship_delta=lambda sub_id, removed, region: deltas.append(
                (sub_id, frozenset(removed))
            ),
            locate=lambda sub_id: (
                pings.append(sub_id) or (Point(5_000, 5_000), Point(20, 0))
            ),
        )
        drive(callbacks)

        assert regions == subclass.regions
        assert deltas == subclass.deltas
        assert pings == subclass.pings
        assert deltas  # the repair path actually produced a delta

    def test_missing_ship_delta_falls_back_to_a_full_push(self):
        regions = []
        transport = CallbackTransport(
            ship_region=lambda sub_id, region: regions.append(region),
            locate=lambda sub_id: (Point(5_000, 5_000), Point(20, 0)),
        )
        server = drive(transport)
        # the repair shipped through ship_region instead of vanishing
        assert len(regions) >= 2
        assert server.metrics.repairs >= 1

    def test_base_transport_is_a_usable_null_transport(self):
        server = drive(Transport())
        assert server.metrics.repairs >= 1  # workload ran; nothing crashed
