"""SubscriptionIndex (OpIndex over subscriptions): event -> matching subs."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Point
from repro.index import SubscriptionIndex


def make_sub(sub_id, *predicates, radius=1000.0):
    return Subscription(sub_id, BooleanExpression(predicates), radius)


class TestSubscriptionIndex:
    def test_basic_match(self):
        index = SubscriptionIndex()
        index.insert(make_sub(1, Predicate("a", Operator.GE, 2)))
        index.insert(make_sub(2, Predicate("a", Operator.GE, 9)))
        event = Event(1, {"a": 5}, Point(0, 0))
        assert {s.sub_id for s in index.match_event(event)} == {1}

    def test_multi_predicate_conjunction(self):
        index = SubscriptionIndex()
        index.insert(
            make_sub(1, Predicate("a", Operator.GE, 2), Predicate("b", Operator.EQ, 1))
        )
        assert not index.match_event(Event(1, {"a": 5}, Point(0, 0)))
        assert not index.match_event(Event(2, {"a": 5, "b": 2}, Point(0, 0)))
        assert index.match_event(Event(3, {"a": 5, "b": 1}, Point(0, 0)))

    @pytest.mark.parametrize(
        "op,operand,value,matches",
        [
            (Operator.EQ, 5, 5, True),
            (Operator.LT, 5, 4, True),
            (Operator.LT, 5, 5, False),
            (Operator.LE, 5, 5, True),
            (Operator.GT, 5, 6, True),
            (Operator.GT, 5, 5, False),
            (Operator.GE, 5, 5, True),
            (Operator.NE, 5, 4, True),
            (Operator.NE, 5, 5, False),
            (Operator.BETWEEN, (2, 6), 4, True),
            (Operator.BETWEEN, (2, 6), 7, False),
            (Operator.IN, frozenset({1, 3}), 3, True),
            (Operator.NOT_IN, frozenset({1, 3}), 2, True),
        ],
    )
    def test_every_operator_path(self, op, operand, value, matches):
        index = SubscriptionIndex()
        index.insert(make_sub(1, Predicate("a", op, operand)))
        got = index.match_event(Event(1, {"a": value}, Point(0, 0)))
        assert bool(got) is matches

    def test_delete_removes_subscription(self):
        index = SubscriptionIndex()
        sub = make_sub(1, Predicate("a", Operator.GE, 2))
        index.insert(sub)
        index.delete(sub)
        assert len(index) == 0
        assert not index.match_event(Event(1, {"a": 5}, Point(0, 0)))

    def test_delete_unknown_raises(self):
        index = SubscriptionIndex()
        with pytest.raises(KeyError):
            index.delete(make_sub(9, Predicate("a", Operator.GE, 2)))

    def test_duplicate_insert_rejected(self):
        index = SubscriptionIndex()
        index.insert(make_sub(1, Predicate("a", Operator.GE, 2)))
        with pytest.raises(ValueError):
            index.insert(make_sub(1, Predicate("b", Operator.EQ, 3)))

    def test_pivot_prune_with_frequency_hint(self):
        # "rare" is the rarest attribute, so subscriptions containing it are
        # pivoted there and events without "rare" skip that partition.
        index = SubscriptionIndex(frequency_hint={"common": 1000, "rare": 1})
        index.insert(
            make_sub(1, Predicate("common", Operator.GE, 0), Predicate("rare", Operator.GE, 0))
        )
        index.insert(make_sub(2, Predicate("common", Operator.GE, 0)))
        event_without_rare = Event(1, {"common": 5}, Point(0, 0))
        assert {s.sub_id for s in index.match_event(event_without_rare)} == {2}
        event_with_rare = Event(2, {"common": 5, "rare": 5}, Point(0, 0))
        assert {s.sub_id for s in index.match_event(event_with_rare)} == {1, 2}


class TestBoolIntAliasing:
    """Probe semantics must equal Predicate.matches on the alias matrix.

    Python compares bools as their integer values (``True == 1``), so the
    operator-group scans must too — pre-fix, ``_operand_key`` sorted
    bools into their own group and the inequality scans disagreed with
    :meth:`Predicate.matches` (PR 9 satellite 3)."""

    ALIAS_VALUES = [True, False, 0, 1, 2, 0.0, 1.0, 0.5]

    @pytest.mark.parametrize(
        "op",
        [Operator.EQ, Operator.NE, Operator.LT, Operator.LE, Operator.GT, Operator.GE],
    )
    @pytest.mark.parametrize("operand", ALIAS_VALUES)
    def test_probe_agrees_with_predicate_matches(self, op, operand):
        index = SubscriptionIndex()
        predicate = Predicate("a", op, operand)
        index.insert(make_sub(1, predicate))
        for value in self.ALIAS_VALUES:
            got = bool(index.match_event(Event(1, {"a": value}, Point(0, 0))))
            assert got is predicate.matches(value), (op, operand, value)

    def test_equality_one_matches_true(self):
        index = SubscriptionIndex()
        index.insert(make_sub(1, Predicate("a", Operator.EQ, 1)))
        assert index.match_event(Event(1, {"a": True}, Point(0, 0)))

    def test_less_than_true_aliases_one(self):
        # Pre-fix: operand True lived in a separate ("bool", ...) group,
        # so the suffix scan for the numeric value 0 skipped it entirely.
        index = SubscriptionIndex()
        index.insert(make_sub(1, Predicate("a", Operator.LT, True)))
        assert index.match_event(Event(1, {"a": 0}, Point(0, 0)))
        assert not index.match_event(Event(2, {"a": 1}, Point(0, 0)))

    def test_between_and_set_operators_alias(self):
        between = Predicate("a", Operator.BETWEEN, (0, 1))
        member = Predicate("a", Operator.IN, frozenset({1, 3}))
        index = SubscriptionIndex()
        index.insert(make_sub(1, between))
        index.insert(make_sub(2, member))
        for value in self.ALIAS_VALUES:
            got = {s.sub_id for s in index.match_event(Event(1, {"a": value}, Point(0, 0)))}
            expected = {
                sub_id
                for sub_id, predicate in ((1, between), (2, member))
                if predicate.matches(value)
            }
            assert got == expected, value

    def test_mixed_type_operands_do_not_crash_matching(self):
        index = SubscriptionIndex()
        index.insert(make_sub(1, Predicate("a", Operator.LT, "m")))
        index.insert(make_sub(2, Predicate("a", Operator.GE, 5)))
        assert {s.sub_id for s in index.match_event(Event(1, {"a": 7}, Point(0, 0)))} == {2}
        assert {s.sub_id for s in index.match_event(Event(2, {"a": "b"}, Point(0, 0)))} == {1}


class TestBitmapPrefilter:
    def test_partition_skipped_without_required_attribute(self):
        index = SubscriptionIndex()
        index.insert(
            make_sub(1, Predicate("a", Operator.GE, 0), Predicate("b", Operator.GE, 0))
        )
        before = index.partitions_pruned
        assert not index.match_event(Event(1, {"a": 1}, Point(0, 0)))
        assert index.partitions_pruned == before + 1

    def test_common_mask_is_the_per_partition_intersection(self):
        index = SubscriptionIndex()
        index.insert(
            make_sub(1, Predicate("a", Operator.GE, 0), Predicate("b", Operator.GE, 0))
        )
        index.insert(make_sub(2, Predicate("a", Operator.GE, 0)))
        # sub 2 needs only "a", so the partition stays probeable for
        # b-less events — and sub 1 correctly stays unmatched.
        before = index.partitions_pruned
        assert {s.sub_id for s in index.match_event(Event(1, {"a": 1}, Point(0, 0)))} == {2}
        assert index.partitions_pruned == before

    def test_delete_restores_prunability(self):
        index = SubscriptionIndex()
        wide = make_sub(1, Predicate("a", Operator.GE, 0), Predicate("b", Operator.GE, 0))
        narrow = make_sub(2, Predicate("a", Operator.GE, 0))
        index.insert(wide)
        index.insert(narrow)
        index.delete(narrow)
        before = index.partitions_pruned
        assert not index.match_event(Event(1, {"a": 1}, Point(0, 0)))
        assert index.partitions_pruned == before + 1

    def test_prefilter_changes_no_results(self):
        # Correlated attribute pairs keep each partition's intersection
        # mask multi-bit, so the sweep actually exercises the skip path.
        rng = random.Random(11)
        index = SubscriptionIndex()
        subs = []
        pairs = [(0, 1), (2, 3), (4, 5)]
        for sub_id in range(30):
            first, second = rng.choice(pairs)
            predicates = [
                Predicate(f"a{first}", Operator.GE, rng.randint(0, 9)),
                Predicate(f"a{second}", Operator.GE, rng.randint(0, 9)),
            ]
            sub = Subscription(sub_id, BooleanExpression(predicates), 1000.0)
            subs.append(sub)
            index.insert(sub)
        for event_id in range(40):
            attrs = {
                f"a{a}": rng.randint(0, 9) for a in rng.sample(range(6), rng.randint(1, 4))
            }
            event = Event(event_id, attrs, Point(0, 0))
            expected = {s.sub_id for s in subs if s.be_matches(event)}
            assert {s.sub_id for s in index.match_event(event)} == expected
        assert index.partitions_pruned > 0  # the sweep must exercise the skip


class TestMatchBatch:
    def _random_pool(self, rng, sub_count=25):
        index = SubscriptionIndex()
        for sub_id in range(sub_count):
            predicates = []
            for _ in range(rng.randint(1, 3)):
                attr = f"a{rng.randint(0, 4)}"
                op = rng.choice(
                    [Operator.EQ, Operator.NE, Operator.LT, Operator.LE,
                     Operator.GT, Operator.GE, Operator.BETWEEN, Operator.IN]
                )
                if op is Operator.BETWEEN:
                    low = rng.randint(0, 8)
                    operand = (low, low + rng.randint(0, 4))
                elif op is Operator.IN:
                    operand = frozenset(rng.sample(range(10), rng.randint(1, 3)))
                else:
                    operand = rng.randint(0, 9)
                predicates.append(Predicate(attr, op, operand))
            index.insert(Subscription(sub_id, BooleanExpression(predicates), 1000.0))
        return index

    def _random_events(self, rng, count=64):
        return [
            Event(
                event_id,
                {f"a{a}": rng.randint(0, 9) for a in rng.sample(range(5), rng.randint(1, 4))},
                Point(0, 0),
            )
            for event_id in range(count)
        ]

    def test_empty_batch(self):
        assert SubscriptionIndex().match_batch([]) == []

    def test_batch_is_byte_identical_to_per_event(self):
        rng = random.Random(23)
        index = self._random_pool(rng)
        events = self._random_events(rng)
        per_event = [index.match_event(event) for event in events]
        batched = index.match_batch(events)
        # identical subscriptions in identical order, per event
        assert [[s.sub_id for s in row] for row in batched] == [
            [s.sub_id for s in row] for row in per_event
        ]

    def test_batch_counters_populate(self):
        rng = random.Random(5)
        index = self._random_pool(rng)
        events = self._random_events(rng, count=16)
        index.match_batch(events)
        assert index.match_batch_probes > 0
        # Fewer distinct probes than the scalar path's one-per-event
        # probing is the whole point of the batch.
        scalar_probes = sum(
            1
            for event in events
            for attribute in event.attributes
            if attribute in index._partitions
            for event_attribute in event.attributes
            if event_attribute in index._partitions[attribute].layers
        )
        assert index.match_batch_probes < scalar_probes

    def test_batch_with_churn(self):
        rng = random.Random(31)
        index = self._random_pool(rng)
        events = self._random_events(rng, count=20)
        victims = [index._subscriptions[sub_id][0] for sub_id in range(0, 25, 2)]
        for sub in victims:
            index.delete(sub)
        per_event = [[s.sub_id for s in index.match_event(e)] for e in events]
        batched = [[s.sub_id for s in row] for row in index.match_batch(events)]
        assert batched == per_event


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_property_match_event_agrees_with_brute_force(data):
    rng = random.Random(data.draw(st.integers(0, 99999)))
    index = SubscriptionIndex()
    subs = []
    for sub_id in range(data.draw(st.integers(1, 25))):
        predicates = []
        for _ in range(rng.randint(1, 3)):
            attr = f"a{rng.randint(0, 4)}"
            op = rng.choice(
                [Operator.EQ, Operator.NE, Operator.LT, Operator.LE,
                 Operator.GT, Operator.GE, Operator.BETWEEN, Operator.IN]
            )
            if op is Operator.BETWEEN:
                low = rng.randint(0, 8)
                operand = (low, low + rng.randint(0, 4))
            elif op is Operator.IN:
                operand = frozenset(rng.sample(range(10), rng.randint(1, 3)))
            else:
                operand = rng.randint(0, 9)
            predicates.append(Predicate(attr, op, operand))
        sub = Subscription(sub_id, BooleanExpression(predicates), 1000.0)
        subs.append(sub)
        index.insert(sub)
    for _ in range(10):
        attrs = {f"a{rng.randint(0, 4)}": rng.randint(0, 9) for _ in range(rng.randint(1, 5))}
        event = Event(0, attrs, Point(0, 0))
        expected = {s.sub_id for s in subs if s.be_matches(event)}
        got = {s.sub_id for s in index.match_event(event)}
        assert got == expected
