"""SubscriptionIndex (OpIndex over subscriptions): event -> matching subs."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Point
from repro.index import SubscriptionIndex


def make_sub(sub_id, *predicates, radius=1000.0):
    return Subscription(sub_id, BooleanExpression(predicates), radius)


class TestSubscriptionIndex:
    def test_basic_match(self):
        index = SubscriptionIndex()
        index.insert(make_sub(1, Predicate("a", Operator.GE, 2)))
        index.insert(make_sub(2, Predicate("a", Operator.GE, 9)))
        event = Event(1, {"a": 5}, Point(0, 0))
        assert {s.sub_id for s in index.match_event(event)} == {1}

    def test_multi_predicate_conjunction(self):
        index = SubscriptionIndex()
        index.insert(
            make_sub(1, Predicate("a", Operator.GE, 2), Predicate("b", Operator.EQ, 1))
        )
        assert not index.match_event(Event(1, {"a": 5}, Point(0, 0)))
        assert not index.match_event(Event(2, {"a": 5, "b": 2}, Point(0, 0)))
        assert index.match_event(Event(3, {"a": 5, "b": 1}, Point(0, 0)))

    @pytest.mark.parametrize(
        "op,operand,value,matches",
        [
            (Operator.EQ, 5, 5, True),
            (Operator.LT, 5, 4, True),
            (Operator.LT, 5, 5, False),
            (Operator.LE, 5, 5, True),
            (Operator.GT, 5, 6, True),
            (Operator.GT, 5, 5, False),
            (Operator.GE, 5, 5, True),
            (Operator.NE, 5, 4, True),
            (Operator.NE, 5, 5, False),
            (Operator.BETWEEN, (2, 6), 4, True),
            (Operator.BETWEEN, (2, 6), 7, False),
            (Operator.IN, frozenset({1, 3}), 3, True),
            (Operator.NOT_IN, frozenset({1, 3}), 2, True),
        ],
    )
    def test_every_operator_path(self, op, operand, value, matches):
        index = SubscriptionIndex()
        index.insert(make_sub(1, Predicate("a", op, operand)))
        got = index.match_event(Event(1, {"a": value}, Point(0, 0)))
        assert bool(got) is matches

    def test_delete_removes_subscription(self):
        index = SubscriptionIndex()
        sub = make_sub(1, Predicate("a", Operator.GE, 2))
        index.insert(sub)
        index.delete(sub)
        assert len(index) == 0
        assert not index.match_event(Event(1, {"a": 5}, Point(0, 0)))

    def test_delete_unknown_raises(self):
        index = SubscriptionIndex()
        with pytest.raises(KeyError):
            index.delete(make_sub(9, Predicate("a", Operator.GE, 2)))

    def test_duplicate_insert_rejected(self):
        index = SubscriptionIndex()
        index.insert(make_sub(1, Predicate("a", Operator.GE, 2)))
        with pytest.raises(ValueError):
            index.insert(make_sub(1, Predicate("b", Operator.EQ, 3)))

    def test_pivot_prune_with_frequency_hint(self):
        # "rare" is the rarest attribute, so subscriptions containing it are
        # pivoted there and events without "rare" skip that partition.
        index = SubscriptionIndex(frequency_hint={"common": 1000, "rare": 1})
        index.insert(
            make_sub(1, Predicate("common", Operator.GE, 0), Predicate("rare", Operator.GE, 0))
        )
        index.insert(make_sub(2, Predicate("common", Operator.GE, 0)))
        event_without_rare = Event(1, {"common": 5}, Point(0, 0))
        assert {s.sub_id for s in index.match_event(event_without_rare)} == {2}
        event_with_rare = Event(2, {"common": 5, "rare": 5}, Point(0, 0))
        assert {s.sub_id for s in index.match_event(event_with_rare)} == {1, 2}


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_property_match_event_agrees_with_brute_force(data):
    rng = random.Random(data.draw(st.integers(0, 99999)))
    index = SubscriptionIndex()
    subs = []
    for sub_id in range(data.draw(st.integers(1, 25))):
        predicates = []
        for _ in range(rng.randint(1, 3)):
            attr = f"a{rng.randint(0, 4)}"
            op = rng.choice(
                [Operator.EQ, Operator.NE, Operator.LT, Operator.LE,
                 Operator.GT, Operator.GE, Operator.BETWEEN, Operator.IN]
            )
            if op is Operator.BETWEEN:
                low = rng.randint(0, 8)
                operand = (low, low + rng.randint(0, 4))
            elif op is Operator.IN:
                operand = frozenset(rng.sample(range(10), rng.randint(1, 3)))
            else:
                operand = rng.randint(0, 9)
            predicates.append(Predicate(attr, op, operand))
        sub = Subscription(sub_id, BooleanExpression(predicates), 1000.0)
        subs.append(sub)
        index.insert(sub)
    for _ in range(10):
        attrs = {f"a{rng.randint(0, 4)}": rng.randint(0, 9) for _ in range(rng.randint(1, 5))}
        event = Event(0, attrs, Point(0, 0))
        expected = {s.sub_id for s in subs if s.be_matches(event)}
        got = {s.sub_id for s in index.match_event(event)}
        assert got == expected
