"""Sharded Elaps: partitioning, routing, multi-homing, and the golden
sharded-vs-single differential.

The load-bearing test is the differential: the 20-subscriber/200-event
golden workload (tests/test_golden_trace.py) must produce a notification
log **byte-identical** to the frozen single-server trace for K in
{1, 2, 4} shards under the deterministic :class:`SerialExecutor`, on
both the one-at-a-time and the batched publish path.  That holds because
delivery is purely geometric (an event is delivered iff it be-matches
and is within the radius), events route to exactly one shard, and the
coordinator's homing invariant guarantees the owning shard knows every
subscriber whose circle its band can touch.
"""

from __future__ import annotations

import random
import threading
from typing import List

import pytest

from repro.core import IGM
from repro.datasets import TwitterLikeGenerator
from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree, SubscriptionIndex
from repro.system import (
    CallbackTransport,
    ElapsServer,
    RebalancePolicy,
    SerialExecutor,
    ServerConfig,
    ShardedElapsServer,
    ThreadedExecutor,
    partition_columns,
)

from test_golden_trace import GOLDEN, GROUP_SIZE, GROUPS, SEED, SPACE


def make_sharded(shards, executor=None, config=None, **kwargs):
    return ShardedElapsServer(
        Grid(40, SPACE),
        IGM(max_cells=400),
        config or ServerConfig(initial_rate=2.0),
        shards=shards,
        executor=executor or SerialExecutor(),
        event_index_factory=lambda: BEQTree(SPACE, emax=32),
        **kwargs,
    )


def make_sub(sub_id=1, radius=1_500.0):
    return Subscription(
        sub_id,
        BooleanExpression([Predicate("topic", Operator.EQ, "sale")]),
        radius=radius,
    )


def sale(event_id, x, y, arrived_at=1):
    return Event(event_id, {"topic": "sale"}, Point(x, y), arrived_at=arrived_at)


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
class TestPartitionColumns:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7, 40])
    def test_bands_cover_every_column_exactly_once(self, shards):
        grid = Grid(40, SPACE)
        specs = partition_columns(grid, shards)
        assert [s.shard_id for s in specs] == list(range(shards))
        assert specs[0].col_lo == 0
        assert specs[-1].col_hi == grid.n
        for left, right in zip(specs, specs[1:]):
            assert left.col_hi == right.col_lo  # contiguous, no gaps
        widths = [s.col_hi - s.col_lo for s in specs]
        assert all(w >= 1 for w in widths)
        assert max(widths) - min(widths) <= 1  # near-equal

    def test_rects_tile_the_space(self):
        grid = Grid(40, SPACE)
        specs = partition_columns(grid, 4)
        assert specs[0].rect.x_min == SPACE.x_min
        assert specs[-1].rect.x_max == pytest.approx(SPACE.x_max)
        for left, right in zip(specs, specs[1:]):
            assert left.rect.x_max == pytest.approx(right.rect.x_min)

    def test_invalid_counts_rejected(self):
        grid = Grid(40, SPACE)
        with pytest.raises(ValueError):
            partition_columns(grid, 0)
        with pytest.raises(ValueError):
            partition_columns(grid, grid.n + 1)

    def test_explicit_uneven_boundaries(self):
        grid = Grid(40, SPACE)
        specs = partition_columns(grid, [0, 3, 5, 30, 40])
        assert [(s.col_lo, s.col_hi) for s in specs] == [
            (0, 3), (3, 5), (5, 30), (30, 40),
        ]
        assert specs[0].rect.x_min == SPACE.x_min
        assert specs[-1].rect.x_max == pytest.approx(SPACE.x_max)
        for left, right in zip(specs, specs[1:]):
            assert left.rect.x_max == pytest.approx(right.rect.x_min)

    def test_explicit_boundaries_validated(self):
        grid = Grid(40, SPACE)
        with pytest.raises(ValueError):
            partition_columns(grid, [0])  # too short
        with pytest.raises(ValueError):
            partition_columns(grid, [1, 40])  # must start at 0
        with pytest.raises(ValueError):
            partition_columns(grid, [0, 39])  # must end at grid.n
        with pytest.raises(ValueError):
            partition_columns(grid, [0, 10, 10, 40])  # empty band
        with pytest.raises(ValueError):
            partition_columns(grid, [0, 20, 10, 40])  # decreasing

    def test_single_band_boundaries_allowed(self):
        grid = Grid(40, SPACE)
        specs = partition_columns(grid, [0, 40])
        assert [(s.col_lo, s.col_hi) for s in specs] == [(0, 40)]


# ----------------------------------------------------------------------
# Event routing
# ----------------------------------------------------------------------
class TestRouting:
    def test_events_land_on_exactly_one_shard(self):
        server = make_sharded(4)
        rng = random.Random(3)
        events = [
            sale(i, rng.uniform(0, 10_000), rng.uniform(0, 10_000))
            for i in range(80)
        ]
        for event in events:
            server.publish(event, now=1)
        per_shard = [
            len(list(worker.corpus_matches(make_sub().expression)))
            for worker in server.shard_servers
        ]
        assert sum(per_shard) == len(events)  # disjoint corpus slices
        assert all(count > 0 for count in per_shard)  # spread across bands

    def test_shard_of_point_respects_band_edges(self):
        server = make_sharded(4)
        for spec in server.specs:
            inside = Point(
                (spec.rect.x_min + spec.rect.x_max) / 2, 5_000
            )
            assert server.shard_of_point(inside) == spec.shard_id

    def test_bootstrap_routes_like_publish(self):
        routed = make_sharded(4)
        rng = random.Random(9)
        events = [
            sale(i, rng.uniform(0, 10_000), rng.uniform(0, 10_000))
            for i in range(40)
        ]
        routed.bootstrap(events)
        for worker, spec in zip(routed.shard_servers, routed.specs):
            for event in worker.corpus_matches(make_sub().expression):
                assert routed.shard_of_point(event.location) == spec.shard_id


# ----------------------------------------------------------------------
# Multi-homing and re-homing
# ----------------------------------------------------------------------
class TestHoming:
    def test_boundary_subscriber_is_multi_homed(self):
        server = make_sharded(4)
        # band edge for 4 shards on a 40-column grid: x = 2_500
        server.subscribe(make_sub(radius=1_500.0), Point(2_500, 5_000), Point(0, 0), 0)
        record = server.subscribers[1]
        assert len(record.homes) >= 2
        for shard_id in record.homes:
            assert 1 in server.shard_servers[shard_id].subscribers

    def test_interior_subscriber_stays_single_homed(self):
        server = make_sharded(2)
        # deep inside shard 0 (bands split at x = 5_000), tiny radius
        server.subscribe(make_sub(radius=200.0), Point(1_000, 5_000), Point(0, 0), 0)
        assert server.subscribers[1].homes == {0}

    def test_moving_across_a_boundary_rehomes(self):
        server = make_sharded(2)
        server.subscribe(make_sub(radius=200.0), Point(1_000, 5_000), Point(50, 0), 0)
        assert server.subscribers[1].homes == {0}
        server.report_location(1, Point(4_950, 5_000), Point(50, 0), now=1)
        assert server.subscribers[1].homes == {0, 1}  # sticky: 0 stays

    def test_cross_boundary_delivery_without_any_event_on_home_shard(self):
        """An event just across the band edge still notifies."""
        server = make_sharded(2)
        server.subscribe(make_sub(radius=1_500.0), Point(4_800, 5_000), Point(0, 0), 0)
        notifications = server.publish(sale(10, 5_200, 5_000), now=1)
        assert [(n.sub_id, n.event.event_id) for n in notifications] == [(1, 10)]

    def test_held_region_is_the_intersection_of_homes(self):
        server = make_sharded(4)
        server.subscribe(make_sub(radius=3_000.0), Point(5_000, 5_000), Point(0, 0), 0)
        record = server.subscribers[1]
        assert len(record.homes) >= 2
        held = record.safe
        assert held is not None
        for shard_id in sorted(record.homes):
            shard_region = record.shard_regions[shard_id]
            merged = held.intersected_with(shard_region)
            # intersecting the held region with any contributor is a no-op
            assert merged.cells == held.cells
            assert merged.complement == held.complement

    def test_unsubscribe_clears_every_home(self):
        server = make_sharded(4)
        server.subscribe(make_sub(radius=3_000.0), Point(5_000, 5_000), Point(0, 0), 0)
        homes = set(server.subscribers[1].homes)
        assert len(homes) >= 2
        server.unsubscribe(1)
        assert 1 not in server.subscribers
        for shard_id in homes:
            assert 1 not in server.shard_servers[shard_id].subscribers
        with pytest.raises(KeyError):
            server.unsubscribe(1)

    def test_duplicate_suppression_across_homes(self):
        """A multi-homed subscriber gets each event exactly once."""
        server = make_sharded(4)
        server.subscribe(make_sub(radius=3_000.0), Point(5_000, 5_000), Point(0, 0), 0)
        notifications = server.publish(sale(10, 5_100, 5_000), now=1)
        assert len(notifications) == 1
        again = server.publish_batch([sale(11, 4_900, 5_000)], now=2)
        assert len(again) == 1
        assert server.delivered_ids(1) == frozenset({10, 11})


# ----------------------------------------------------------------------
# Client-facing transport
# ----------------------------------------------------------------------
class TestCoordinatorTransport:
    def test_held_region_ships_through_the_transport(self):
        shipped = {}
        server = make_sharded(
            4,
            transport=CallbackTransport(
                ship_region=lambda sub_id, region: shipped.update({sub_id: region})
            ),
        )
        _, safe = server.subscribe(
            make_sub(radius=3_000.0), Point(5_000, 5_000), Point(0, 0), 0
        )
        assert shipped[1] is safe  # one ship, of the held intersection

    def test_location_pings_route_through_the_coordinator(self):
        pings = []

        def locate(sub_id):
            pings.append(sub_id)
            return Point(5_000, 5_000), Point(0, 0)

        server = make_sharded(4, transport=CallbackTransport(locate=locate))
        server.subscribe(make_sub(radius=3_000.0), Point(5_000, 5_000), Point(0, 0), 0)
        server.publish(sale(10, 5_100, 5_000), now=1)
        assert pings  # the owning shard's arrival ping reached the client


# ----------------------------------------------------------------------
# The golden sharded-vs-single differential
# ----------------------------------------------------------------------
def run_sharded_simulation(
    shards: int, batched: bool, executor=None, rebalance_at=None, bounds=None
) -> str:
    """The golden-trace workload against a sharded fleet.

    ``rebalance_at`` forces one boundary move (to ``bounds``, or to the
    load-balanced cut) after that publish group — the frozen trace must
    survive it byte-for-byte.
    """
    generator = TwitterLikeGenerator(SPACE, seed=SEED)
    subscriptions = generator.subscriptions(20, size=2, radius=3_000)
    rng = random.Random(SEED * 101)
    server = make_sharded(shards, executor=executor)
    lines: List[str] = []

    def record(notifications) -> None:
        for n in notifications:
            lines.append(f"t={n.timestamp} sub={n.sub_id} event={n.event.event_id}")

    for subscription in subscriptions:
        location = Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000))
        notifications, _ = server.subscribe(
            subscription, location, Point(0.0, 0.0), now=0
        )
        record(notifications)

    multi_homed = sum(
        1 for record_ in server.subscribers.values() if len(record_.homes) > 1
    )
    if shards > 1:
        # the differential must actually exercise boundary crossings
        assert multi_homed > 0

    for group in range(GROUPS):
        now = group + 1
        events = generator.events(
            GROUP_SIZE, start_id=group * GROUP_SIZE, arrived_at=now, seed_offset=group
        )
        if batched:
            record(server.publish_batch(events, now))
        else:
            for event in events:
                record(server.publish(event, now))
        if rebalance_at == group:
            assert server.rebalance_now(now=now, bounds=bounds)
            assert server.rebalances == 1
    server.close()
    return "\n".join(lines) + "\n"


class TestGoldenDifferential:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("batched", [False, True])
    def test_sharded_trace_is_byte_identical_to_the_frozen_single_trace(
        self, shards, batched
    ):
        frozen = GOLDEN.read_bytes()
        trace = run_sharded_simulation(shards, batched)
        assert trace.encode() == frozen

    def test_threaded_executor_matches_the_frozen_trace(self):
        """With disjoint per-shard state and per-shard locks, the pool
        executor must reproduce the same bytes on the unbatched path
        (one event at a time -> one shard at a time -> deterministic)."""
        frozen = GOLDEN.read_bytes()
        trace = run_sharded_simulation(4, batched=False, executor=ThreadedExecutor())
        assert trace.encode() == frozen

    def test_threaded_batched_path_matches_as_a_set(self):
        """The batched fan-out interleaves shard completions, so only the
        delivery *set* (and the frozen line multiset) is pinned."""
        frozen_lines = sorted(GOLDEN.read_text().splitlines())
        trace = run_sharded_simulation(4, batched=True, executor=ThreadedExecutor())
        assert sorted(trace.splitlines()) == frozen_lines

    @pytest.mark.parametrize("batched", [False, True])
    def test_forced_rebalance_keeps_the_trace_byte_identical(self, batched):
        """A mid-run boundary move (events migrated, subscribers
        re-homed, indexes re-sequenced) must not change a single byte of
        the delivered trace — the safety contract of DESIGN.md §15."""
        frozen = GOLDEN.read_bytes()
        trace = run_sharded_simulation(
            4, batched=batched, rebalance_at=GROUPS // 2,
            bounds=[0, 5, 12, 30, 40],
        )
        assert trace.encode() == frozen

    def test_load_balanced_cut_keeps_the_trace_byte_identical(self):
        """Same differential, but the new boundaries come from the
        observed load histogram instead of being pinned by the test."""
        frozen = GOLDEN.read_bytes()
        trace = run_sharded_simulation(4, batched=False, rebalance_at=GROUPS // 2)
        assert trace.encode() == frozen


# ----------------------------------------------------------------------
# Aggregate views
# ----------------------------------------------------------------------
class TestAggregates:
    def test_merged_metrics_fold_worker_counters(self):
        server = make_sharded(4)
        server.subscribe(make_sub(radius=3_000.0), Point(5_000, 5_000), Point(0, 0), 0)
        server.publish(sale(10, 5_100, 5_000), now=1)
        merged = server.merged_metrics()
        worker_notifications = sum(
            worker.metrics.notifications for worker in server.shard_servers
        )
        assert merged.notifications == worker_notifications
        assert merged.constructions >= len(server.subscribers[1].homes)

    def test_merged_metrics_carry_batch_matching_counters(self):
        # Every worker's _publish_batch runs SubscriptionIndex.match_batch;
        # the probe counter must survive the cross-process metrics merge.
        server = make_sharded(2)
        server.subscribe(make_sub(radius=3_000.0), Point(5_000, 5_000), Point(0, 0), 0)
        server.publish_batch([sale(10, 5_100, 5_000), sale(11, 4_900, 5_000)], now=1)
        merged = server.merged_metrics()
        assert merged.match_batch_probes > 0
        assert merged.match_batch_probes == sum(
            worker.metrics.match_batch_probes for worker in server.shard_servers
        )

    def test_merged_registry_histograms(self):
        server = make_sharded(2)
        server.subscribe(make_sub(radius=1_000.0), Point(5_000, 5_000), Point(0, 0), 0)
        server.publish(sale(10, 5_100, 5_000), now=1)
        merged = server.merged_registry()
        total = sum(
            worker.registry.tracer.histogram("publish").count
            for worker in server.shard_servers
        )
        assert merged.tracer.histogram("publish").count == total
        assert total >= 1

    def test_system_stats_sum_over_shards(self):
        server = make_sharded(4)
        for event_id in range(8):
            server.publish(sale(event_id, 1_250 * event_id + 600, 5_000), now=1)
        stats = server.system_stats(now=2)
        assert stats.total_events == 8

    def test_expire_due_events_sums_over_shards(self):
        server = make_sharded(2)
        server.publish(
            Event(1, {"topic": "sale"}, Point(2_000, 5_000), arrived_at=1,
                  expires_at=3),
            now=1,
        )
        server.publish(
            Event(2, {"topic": "sale"}, Point(8_000, 5_000), arrived_at=1,
                  expires_at=3),
            now=1,
        )
        assert server.expire_due_events(now=10) == 2

    def test_subscription_index_factory_is_used(self):
        built = []

        def factory():
            index = SubscriptionIndex()
            built.append(index)
            return index

        server = make_sharded(4, subscription_index_factory=factory)
        assert len(built) == 4
        assert {id(worker.subscription_index) for worker in server.shard_servers} == {
            id(index) for index in built
        }

    def test_zero_arg_strategy_factory_builds_one_strategy_per_shard(self):
        built = []

        def factory():
            strategy = IGM(max_cells=400)
            built.append(strategy)
            return strategy

        server = ShardedElapsServer(
            Grid(40, SPACE),
            factory,
            ServerConfig(initial_rate=2.0),
            shards=3,
            executor=SerialExecutor(),
            event_index_factory=lambda: BEQTree(SPACE, emax=32),
        )
        assert len(built) == 3
        assert [id(w.strategy) for w in server.shard_servers] == [
            id(s) for s in built
        ]

    def test_spec_strategy_factory_can_split_the_region_budget(self):
        seen_specs = []

        def factory(spec):
            seen_specs.append(spec)
            return IGM(max_cells=max(1, 400 // 4))

        server = ShardedElapsServer(
            Grid(40, SPACE),
            factory,
            ServerConfig(initial_rate=2.0),
            shards=4,
            executor=SerialExecutor(),
            event_index_factory=lambda: BEQTree(SPACE, emax=32),
        )
        assert seen_specs == partition_columns(server.grid, 4)
        assert all(w.strategy.max_cells == 100 for w in server.shard_servers)
        # a smaller per-shard budget never changes what gets delivered
        sub = make_sub()
        server.bootstrap([sale(1, 9_000, 5_000)])
        server.subscribe(sub, Point(5_000, 5_000), Point(20, 0), now=0)
        notes = server.publish(sale(2, 5_200, 5_000, arrived_at=1), now=1)
        assert [n.event.event_id for n in notes] == [2]


# ----------------------------------------------------------------------
# Executor lifecycle
# ----------------------------------------------------------------------
class TestExecutorLifecycle:
    @pytest.mark.parametrize(
        "make",
        [SerialExecutor, ThreadedExecutor],
        ids=["serial", "threaded"],
    )
    def test_close_is_idempotent(self, make):
        executor = make()
        executor.run({0: lambda: 1})
        executor.close()
        executor.close()  # a second close must be a no-op

    def test_context_manager_closes_on_exit(self):
        with ThreadedExecutor() as executor:
            assert executor.run({0: lambda: 7, 1: lambda: 8}) == {0: 7, 1: 8}
        executor.close()  # already closed; still a no-op

    def test_threaded_pool_grows_to_later_wider_fanouts(self):
        """Regression: the pool used to be sized by the *first* call's
        fan-out, so a width-1 warm-up left every later K-way fan-out
        dribbling through one thread.  A barrier only K simultaneous
        threads can pass proves the pool really widened."""
        executor = ThreadedExecutor()  # no explicit width: sized on demand
        assert executor.run({0: lambda: "warm"}) == {0: "warm"}
        barrier = threading.Barrier(4, timeout=5.0)

        def rendezvous():
            barrier.wait()  # BrokenBarrierError unless 4 threads arrive
            return True

        results = executor.run({k: rendezvous for k in range(4)})
        assert results == {k: True for k in range(4)}
        executor.close()

    def test_threaded_explicit_width_still_respected(self):
        executor = ThreadedExecutor(max_workers=2)
        assert executor.run({k: (lambda k=k: k) for k in range(6)}) == {
            k: k for k in range(6)
        }
        executor.close()

    def test_fleet_close_then_second_close_is_safe(self):
        server = make_sharded(2)
        server.publish(sale(1, 5_000, 5_000), now=1)
        server.close()
        server.close()


# ----------------------------------------------------------------------
# Load-adaptive repartitioning (serial executor; process fleet coverage
# lives in test_process_fleet.py)
# ----------------------------------------------------------------------
class TestRebalance:
    def hot_event(self, event_id, rng):
        # concentrate the stream on columns 12..17 of the 40-column grid
        return sale(event_id, rng.uniform(3_100, 4_400), rng.uniform(0, 10_000))

    def test_policy_fires_and_recuts_around_the_hotspot(self):
        policy = RebalancePolicy(check_every=16, min_events=64, max_imbalance=1.5)
        server = make_sharded(4, rebalance=policy)
        rng = random.Random(11)
        for event_id in range(160):
            server.publish(self.hot_event(event_id, rng), now=1 + event_id)
        assert server.rebalances >= 1
        bounds = [spec.col_lo for spec in server.specs] + [server.grid.n]
        assert bounds != [0, 10, 20, 30, 40]
        # the hot column range is now split across several bands
        hot_shards = {server._shard_by_column[c] for c in range(12, 18)}
        assert len(hot_shards) >= 2
        # load accounting observes every publish
        assert sum(server.shard_loads()) > 0
        server.close()

    def test_policy_quiet_below_min_events(self):
        policy = RebalancePolicy(check_every=8, min_events=10_000)
        server = make_sharded(4, rebalance=policy)
        rng = random.Random(11)
        for event_id in range(64):
            server.publish(self.hot_event(event_id, rng), now=1)
        assert server.rebalances == 0
        server.close()

    def test_balanced_stream_never_triggers(self):
        policy = RebalancePolicy(check_every=16, min_events=32, max_imbalance=2.0)
        server = make_sharded(4, rebalance=policy)
        rng = random.Random(11)
        for event_id in range(128):
            server.publish(
                sale(event_id, rng.uniform(0, 10_000), rng.uniform(0, 10_000)),
                now=1,
            )
        assert server.rebalances == 0
        server.close()

    def test_config_carries_the_policy(self):
        config = ServerConfig(
            initial_rate=2.0,
            rebalance=RebalancePolicy(check_every=16, min_events=32,
                                      max_imbalance=1.2),
        )
        server = make_sharded(4, config=config)
        assert server.rebalance_policy is config.rebalance
        server.close()

    def test_rebalance_now_is_a_noop_without_load_or_change(self):
        server = make_sharded(4)
        assert not server.rebalance_now()  # nothing observed yet
        assert not server.rebalance_now(bounds=[0, 10, 20, 30, 40])  # same cut
        assert server.rebalances == 0
        server.close()

    def test_deliveries_survive_a_forced_move_with_live_subscribers(self):
        server = make_sharded(4)
        sub = make_sub(radius=3_000.0)
        server.bootstrap([sale(1, 3_300, 5_000, arrived_at=0)])
        notes, _ = server.subscribe(sub, Point(3_500, 5_000), Point(0, 0), now=0)
        assert [n.event.event_id for n in notes] == [1]
        assert server.rebalance_now(now=1, bounds=[0, 5, 13, 30, 40])
        # the corpus slice moved with the boundary: no duplicate, no loss
        notes = server.publish(sale(2, 3_400, 5_000, arrived_at=2), now=2)
        assert [n.event.event_id for n in notes] == [2]
        assert server.delivered_ids(sub.sub_id) == frozenset({1, 2})
        # the migrated event lives on exactly one shard
        total = sum(
            len(list(w.corpus_matches(sub.expression)))
            for w in server.shard_servers
        )
        assert total == 2
        server.close()

    def test_recovery_restores_moved_boundaries(self, tmp_path):
        """fleet.json closes the routing gap: a fleet recovered from its
        band journals must route by the *rebalanced* boundaries, or the
        homing invariant breaks for every post-recovery event."""
        from repro.system import JournalSpec

        config = ServerConfig(
            initial_rate=2.0, journal=JournalSpec(str(tmp_path))
        )
        server = make_sharded(4, config=config)
        sub = make_sub(radius=3_000.0)
        server.subscribe(sub, Point(3_500, 5_000), Point(0, 0), now=0)
        server.publish(sale(1, 3_300, 5_000), now=1)
        assert server.rebalance_now(now=2, bounds=[0, 5, 13, 30, 40])
        server.publish(sale(2, 3_400, 5_000), now=3)
        expected = server.delivered_ids(sub.sub_id)
        server.close()

        revived = make_sharded(4, config=config)
        revived.recover()
        assert [s.col_lo for s in revived.specs] == [0, 5, 13, 30]
        assert revived.rebalances == 1
        assert revived.delivered_ids(sub.sub_id) == expected
        # routing agrees with the recovered map: a fresh hot-band event
        # lands on the shard that owns column 13 now, and is delivered
        notes = revived.publish(sale(3, 3_400, 5_000, arrived_at=4), now=4)
        assert [n.event.event_id for n in notes] == [3]
        revived.close()
