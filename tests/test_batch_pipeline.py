"""The batched event pipeline: ``publish_batch`` end to end.

Semantics: a batch must deliver exactly what the same events published
one at a time would deliver (the golden-trace suite pins a full
simulation; here the property is checked per-scenario with fresh
servers), while doing strictly less work: one ping and at most one
safe-region construction per subscriber per burst, bulk z-ordered
insertion, and cache-amortised matching — all visible through the new
``CommunicationStats`` counters.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core import IGM
from repro.datasets import TwitterLikeGenerator
from repro.expressions import BooleanExpression, Event, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree
from repro.system import ElapsServer, ServerConfig
from repro.system.network import ElapsNetworkClient, ElapsTCPServer
from repro.system.protocol import EventPublishBatchMessage, NotificationMessage

SPACE = Rect(0, 0, 10_000, 10_000)


def fresh_server(**config_fields) -> ElapsServer:
    config = ServerConfig(initial_rate=1.0, **config_fields)
    return ElapsServer(
        Grid(40, SPACE),
        IGM(max_cells=400),
        config,
        event_index=BEQTree(SPACE, emax=32),
    )


def make_sub(sub_id=1, radius=1_500.0):
    return Subscription(
        sub_id,
        BooleanExpression([Predicate("topic", Operator.EQ, "sale")]),
        radius=radius,
    )


def matching_event(event_id, location, arrived_at=1):
    return Event(event_id, {"topic": "sale"}, location, arrived_at=arrived_at)


def note_tuples(notifications):
    return [(n.sub_id, n.event.event_id, n.timestamp) for n in notifications]


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_batch_equals_event_at_a_time(self, seed):
        """Same subscribers, same events, same notifications, same order."""
        generator = TwitterLikeGenerator(SPACE, seed=seed)
        subscriptions = generator.subscriptions(12, size=2, radius=3_000)
        rng = random.Random(seed)
        placements = [
            Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000))
            for _ in subscriptions
        ]
        single_log, batch_log = [], []
        for log, batched in ((single_log, False), (batch_log, True)):
            server = fresh_server()
            for subscription, location in zip(subscriptions, placements):
                notes, _ = server.subscribe(
                    subscription, location, Point(0.0, 0.0), now=0
                )
                log.extend(note_tuples(notes))
            for group in range(5):
                events = generator.events(
                    16, start_id=group * 16, arrived_at=group + 1, seed_offset=group
                )
                if batched:
                    log.extend(note_tuples(server.publish_batch(events, group + 1)))
                else:
                    for event in events:
                        log.extend(note_tuples(server.publish(event, group + 1)))
        assert batch_log == single_log

    def test_empty_batch_is_a_noop(self):
        server = fresh_server()
        before = server.metrics.as_dict()
        assert server.publish_batch([], now=1) == []
        assert server.metrics.as_dict() == before

    def test_duplicate_ids_within_batch_rejected_atomically(self):
        server = fresh_server()
        events = [
            matching_event(1, Point(5_000, 5_000)),
            matching_event(1, Point(6_000, 6_000)),
        ]
        with pytest.raises(ValueError):
            server.publish_batch(events, now=1)
        # upfront validation: nothing was inserted
        assert len(server.event_index) == 0


class TestAmortisation:
    def test_one_construction_per_subscriber_per_burst(self):
        """A burst of out-of-radius matching events: N constructions on
        the single path, exactly 1 on the batched path."""
        burst = [
            matching_event(100 + k, Point(8_000.0 + 10 * k, 8_000.0))
            for k in range(8)
        ]
        # use_impact_region=False makes every be-matching arrival ping,
        # so every out-of-radius event forces a reconstruction.
        single = fresh_server(use_impact_region=False)
        single.subscribe(make_sub(), Point(2_000, 2_000), Point(10, 0), now=0)
        base = single.metrics.constructions
        for event in burst:
            single.publish(event, now=1)
        assert single.metrics.constructions - base == len(burst)
        assert single.metrics.event_arrival_rounds == len(burst)

        batched = fresh_server(use_impact_region=False)
        batched.subscribe(make_sub(), Point(2_000, 2_000), Point(10, 0), now=0)
        base = batched.metrics.constructions
        notes = batched.publish_batch(burst, now=1)
        assert notes == []
        assert batched.metrics.constructions - base == 1
        assert batched.metrics.event_arrival_rounds == 1

    def test_batch_counters_populated(self):
        generator = TwitterLikeGenerator(SPACE, seed=3)
        server = fresh_server()
        for subscription in generator.subscriptions(10, size=2, radius=3_000):
            server.subscribe(subscription, Point(5_000, 5_000), Point(0, 0), now=0)
        for group in range(4):
            events = generator.events(
                32, start_id=group * 32, arrived_at=group + 1, seed_offset=group
            )
            server.publish_batch(events, group + 1)
        stats = server.metrics.as_dict()
        assert stats["batches"] == 4
        assert stats["batch_events"] == 4 * 32
        assert stats["leaf_probes_saved"] > 0
        assert stats["cache_hits"] >= 0
        # The single-event path never touches them.
        single = fresh_server()
        single.subscribe(make_sub(), Point(5_000, 5_000), Point(0, 0), now=0)
        single.publish(matching_event(1, Point(5_100, 5_000)), now=1)
        assert single.metrics.batches == 0
        assert single.metrics.batch_events == 0

    def test_delivery_within_radius_still_immediate(self):
        server = fresh_server()
        server.subscribe(make_sub(radius=2_000), Point(5_000, 5_000), Point(0, 0), now=0)
        burst = [matching_event(k, Point(5_000.0 + 50 * k, 5_000.0)) for k in range(5)]
        notes = server.publish_batch(burst, now=1)
        assert sorted(n.event.event_id for n in notes) == [0, 1, 2, 3, 4]
        # In-radius bursts deliver without any reconstruction.
        assert server.metrics.constructions == 1  # the subscribe-time one

    def test_batch_respects_event_expiry(self):
        server = fresh_server()
        server.subscribe(make_sub(radius=2_000), Point(5_000, 5_000), Point(0, 0), now=0)
        doomed = Event(
            1, {"topic": "sale"}, Point(5_100, 5_000), arrived_at=1, expires_at=3
        )
        server.publish_batch([doomed], now=1)
        assert len(server.event_index) == 1
        assert server.expire_due_events(now=5) == 1
        assert len(server.event_index) == 0


class TestWireProtocol:
    def test_batch_message_over_tcp_delivers_notifications(self):
        async def scenario():
            tcp = ElapsTCPServer(fresh_server(), port=0, timestamp_seconds=0.05)
            await tcp.start()
            subscriber = ElapsNetworkClient("127.0.0.1", tcp.port)
            publisher = ElapsNetworkClient("127.0.0.1", tcp.port)
            await subscriber.connect()
            await publisher.connect()
            await subscriber.subscribe(make_sub(), Point(5_000, 5_000), Point(40, 0))
            await publisher.publish_batch(
                [
                    (1, {"topic": "sale", "price": 9}, Point(5_100, 5_000)),
                    (2, {"topic": "weather"}, Point(5_100, 5_000)),
                    (3, {"topic": "sale"}, Point(5_200, 5_000), 100),
                ]
            )
            got = set()
            for _ in range(2):
                message = await subscriber.receive()
                assert isinstance(message, NotificationMessage)
                # the server composes unique internal ids; the low 32
                # bits carry the publisher's event id
                got.add(message.event_id & 0xFFFFFFFF)
            assert got == {1, 3}
            assert tcp.server.metrics.batches == 1
            assert tcp.server.metrics.batch_events == 3
            await subscriber.close()
            await publisher.close()
            await tcp.stop()

        asyncio.run(scenario())

    def test_empty_batch_message_rejected_at_construction(self):
        with pytest.raises(ValueError):
            EventPublishBatchMessage(events=())
