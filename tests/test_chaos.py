"""Chaos tests: the resilient client against a hostile network.

The acceptance run from DESIGN.md §8: a seeded chaos proxy (drops,
delays, resets) between 50 subscribers and the server, 500 published
events, and at the end every client holds exactly the events its
subscription matched — no duplicates, no gaps, no unhandled exceptions
anywhere in the event loop.  The whole run is reproducible from
``CHAOS_SEED``.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core import IGM
from repro.expressions import BooleanExpression, Operator, Predicate, Subscription
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree
from repro.system import ClientConfig, NetworkConfig, ServerConfig, ElapsServer
from repro.system.network import (
    ElapsNetworkClient,
    ElapsTCPServer,
    ReconnectPolicy,
    ResilientElapsClient,
)
from repro.system.protocol import NotificationMessage, ResyncMessage, SafeRegionPush
from repro.testing import FaultConfig, chaos_proxy

SPACE = Rect(0, 0, 10_000, 10_000)
CHAOS_SEED = 0xC4A05
TOPICS = ("sale", "music", "news", "sports")


def make_tcp_server(**kwargs) -> ElapsTCPServer:
    # a coarser grid than the simulation benchmarks: safe-region
    # construction happens thousands of times in the acceptance run and
    # dominates its wall clock
    server = ElapsServer(
        Grid(20, SPACE),
        IGM(max_cells=100),
        ServerConfig(initial_rate=1.0),
        event_index=BEQTree(SPACE, emax=64))
    kwargs.setdefault("read_timeout", 2.0)
    kwargs.setdefault("retain_subscribers", True)
    config = NetworkConfig().with_(**kwargs)
    return ElapsTCPServer(server, port=0, timestamp_seconds=0.05, config=config)


def topic_subscription(sub_id: int, topic: str, radius: float = 2_500.0):
    return Subscription(
        sub_id,
        BooleanExpression([Predicate("topic", Operator.EQ, topic)]),
        radius=radius,
    )


def run_with_loop_watch(coro_factory):
    loop_errors = []

    async def wrapper():
        loop = asyncio.get_running_loop()
        loop.set_exception_handler(lambda _loop, context: loop_errors.append(context))
        await coro_factory()

    asyncio.run(wrapper())
    return loop_errors


class TestResilientClient:
    def test_reconnect_resubscribes_and_keeps_delivered_state(self):
        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            client = ResilientElapsClient(
                "127.0.0.1",
                tcp.port,
                topic_subscription(1, "sale"),
                Point(5_000, 5_000),
                config=ClientConfig(
                    heartbeat_interval=0.1,
                    reconnect=ReconnectPolicy(base_delay=0.02, max_delay=0.1),
                ),
                rng=random.Random(7),
            )
            await client.start()
            await client.wait_connected()
            while 1 not in tcp.server.subscribers:
                await asyncio.sleep(0.02)

            publisher = ElapsNetworkClient("127.0.0.1", tcp.port)
            await publisher.connect()
            await publisher.publish(100, {"topic": "sale"}, Point(5_100, 5_000))
            while not client.events:
                await asyncio.sleep(0.02)

            await client.force_reconnect()
            deadline = asyncio.get_running_loop().time() + 5.0
            while client.connections < 2:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            await client.wait_connected()
            while tcp.server.metrics.resubscribes < 1:
                await asyncio.sleep(0.02)

            # the already-held event is not re-shipped...
            await publisher.publish(101, {"topic": "sale"}, Point(4_900, 5_000))
            while len(client.events) < 2:
                await asyncio.sleep(0.02)
            ids = [event.event_id for event in client.events]
            assert len(ids) == len(set(ids))
            assert tcp.server.metrics.resyncs >= 1  # reconnect sent one

            await publisher.close()
            await client.stop()
            await tcp.stop()

        assert run_with_loop_watch(scenario) == []

    def test_resync_redelivers_lost_notifications(self):
        """A client reporting an empty received set gets the gap refilled."""

        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            raw = ElapsNetworkClient("127.0.0.1", tcp.port)
            await raw.connect()
            sub = topic_subscription(3, "news")
            location = Point(5_000, 5_000)
            await raw.subscribe(sub, location, Point(0, 0))

            publisher = ElapsNetworkClient("127.0.0.1", tcp.port)
            await publisher.connect()
            await publisher.publish(200, {"topic": "news"}, Point(5_050, 5_000))
            first = await raw.receive()
            assert isinstance(first, NotificationMessage)

            # the client "lost" it: resync with nothing received
            await raw.send(ResyncMessage(3, location, Point(0, 0), ()))
            redelivered = None
            while not isinstance(redelivered, NotificationMessage):
                redelivered = await raw.receive()
            assert redelivered.event_id == first.event_id
            assert tcp.server.metrics.redeliveries >= 1

            await publisher.close()
            await raw.close()
            await tcp.stop()

        assert run_with_loop_watch(scenario) == []


@pytest.mark.chaos
class TestChaosAcceptance:
    """The ISSUE's acceptance run, reproducible from CHAOS_SEED."""

    SUBSCRIBERS = 50
    EVENTS = 500

    def test_seeded_chaos_run_delivers_exactly_once(self):
        rng = random.Random(CHAOS_SEED)
        placements = [
            (
                Point(rng.uniform(500, 9_500), rng.uniform(500, 9_500)),
                TOPICS[rng.randrange(len(TOPICS))],
            )
            for _ in range(self.SUBSCRIBERS)
        ]
        event_plan = [
            (
                TOPICS[rng.randrange(len(TOPICS))],
                Point(rng.uniform(0, 10_000), rng.uniform(0, 10_000)),
            )
            for _ in range(self.EVENTS)
        ]
        config = FaultConfig(
            seed=CHAOS_SEED,
            drop_rate=0.03,
            reset_rate=0.01,
            delay_rate=0.15,
            delay_max=0.003,
        )

        async def scenario():
            tcp = make_tcp_server()
            await tcp.start()
            async with chaos_proxy("127.0.0.1", tcp.port, config) as proxy:
                clients = [
                    ResilientElapsClient(
                        "127.0.0.1",
                        proxy.port,
                        topic_subscription(i + 1, topic),
                        location,
                        config=ClientConfig(
                            heartbeat_interval=0.2,
                            read_timeout=1.0,
                            reconnect=ReconnectPolicy(
                                base_delay=0.05, max_delay=0.4
                            ),
                        ),
                        rng=random.Random(CHAOS_SEED + i),
                    )
                    for i, (location, topic) in enumerate(placements)
                ]
                for client in clients:
                    await client.start()

                # chaos may eat subscribes; the reconnect loop retries
                # until the server has seen all of them
                deadline = asyncio.get_running_loop().time() + 30.0
                while len(tcp.server.subscribers) < self.SUBSCRIBERS:
                    assert (
                        asyncio.get_running_loop().time() < deadline
                    ), f"only {len(tcp.server.subscribers)} subscribers registered"
                    await asyncio.sleep(0.1)

                # the publisher bypasses the proxy: every event reaches
                # the server, so ground truth is the full plan
                publisher = ElapsNetworkClient("127.0.0.1", tcp.port)
                await publisher.connect()
                for i, (topic, location) in enumerate(event_plan):
                    await publisher.publish(i, {"topic": topic}, location)
                    if i % 20 == 19:
                        await asyncio.sleep(0.01)
                deadline = asyncio.get_running_loop().time() + 60.0
                while len(tcp.server._events_by_id) < self.EVENTS:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.05)

                expected = {
                    client.mobile.subscription.sub_id: {
                        event.event_id
                        for event in tcp.server._events_by_id.values()
                        if client.mobile.subscription.matches(
                            event, at=client.mobile.location
                        )
                    }
                    for client in clients
                }
                assert sum(len(ids) for ids in expected.values()) > 0

                # settle: stop injecting faults and let the reconnect +
                # resync machinery drain every gap
                proxy.enabled = False
                converged = False
                for _ in range(40):
                    for client in clients:
                        await client.resync_now()
                    await asyncio.sleep(0.3)
                    converged = all(
                        set(client.mobile.seen_event_ids)
                        == expected[client.mobile.subscription.sub_id]
                        for client in clients
                    )
                    if converged:
                        break

                for client in clients:
                    sub_id = client.mobile.subscription.sub_id
                    got = [event.event_id for event in client.events]
                    assert len(got) == len(set(got)), f"duplicates at sub {sub_id}"
                    assert set(got) == expected[sub_id], (
                        f"sub {sub_id}: missing {sorted(expected[sub_id] - set(got))[:5]}"
                        f" spurious {sorted(set(got) - expected[sub_id])[:5]}"
                    )
                assert converged

                # the run must actually have been hostile
                assert proxy.stats.dropped > 0
                assert proxy.stats.resets > 0
                assert proxy.stats.delayed > 0

                await publisher.close()
                for client in clients:
                    await client.stop()
            await tcp.stop()

        assert run_with_loop_watch(scenario) == []
