"""Movement substrate: polyline walking, road network, synthetic and taxi
trajectory generators."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.geometry import Point, Rect
from repro.trajectories import (
    RoadNetwork,
    SyntheticTrajectoryGenerator,
    TaxiTrajectoryGenerator,
    Trajectory,
    walk_polyline,
)

SPACE = Rect(0, 0, 50_000, 50_000)


class TestTrajectory:
    def test_requires_positions(self):
        with pytest.raises(ValueError):
            Trajectory([])

    def test_position_clamps_at_end(self):
        trajectory = Trajectory([Point(0, 0), Point(1, 0)])
        assert trajectory.position_at(5) == Point(1, 0)

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            Trajectory([Point(0, 0)]).position_at(-1)

    def test_velocity_finite_difference(self):
        trajectory = Trajectory([Point(0, 0), Point(3, 4)])
        assert trajectory.velocity_at(0) == Point(3, 4)
        assert trajectory.velocity_at(1) == Point(0, 0)  # parked at the end

    def test_average_speed(self):
        trajectory = Trajectory([Point(0, 0), Point(10, 0), Point(20, 0)])
        assert trajectory.average_speed() == 10.0


class TestWalkPolyline:
    def test_constant_steps_on_straight_line(self):
        points = walk_polyline([Point(0, 0), Point(100, 0)], [10.0] * 5)
        assert points[0] == Point(0, 0)
        for k, p in enumerate(points):
            assert p.x == pytest.approx(10.0 * k)

    def test_crosses_vertices(self):
        points = walk_polyline([Point(0, 0), Point(10, 0), Point(10, 10)], [15.0])
        assert points[-1] == Point(10, 5)

    def test_parks_at_end(self):
        points = walk_polyline([Point(0, 0), Point(10, 0)], [100.0, 100.0])
        assert points[-1] == Point(10, 0)
        assert points[-2] == Point(10, 0)

    def test_zero_steps_stay_put(self):
        points = walk_polyline([Point(0, 0), Point(10, 0)], [0.0, 5.0])
        assert points[1] == Point(0, 0)
        assert points[2] == Point(5, 0)

    def test_empty_polyline_rejected(self):
        with pytest.raises(ValueError):
            walk_polyline([], [1.0])


class TestRoadNetwork:
    def test_grid_size_validation(self):
        with pytest.raises(ValueError):
            RoadNetwork(SPACE, grid_size=1)

    def test_nodes_in_space(self):
        network = RoadNetwork(SPACE, grid_size=8, seed=1)
        for node in network.graph.nodes:
            assert SPACE.contains_point(network.position_of(node))

    def test_connected(self):
        import networkx as nx

        network = RoadNetwork(SPACE, grid_size=8, seed=1)
        assert nx.is_connected(network.graph)

    def test_route_endpoints(self):
        network = RoadNetwork(SPACE, grid_size=8, seed=1)
        waypoints = network.route((0, 0), (7, 7))
        assert waypoints[0] == network.position_of((0, 0))
        assert waypoints[-1] == network.position_of((7, 7))

    def test_congestion_in_range(self):
        network = RoadNetwork(SPACE, grid_size=6, seed=2)
        for factor in network.congestion_along((0, 0), (5, 5)):
            assert 0.0 < factor <= 1.0

    def test_determinism(self):
        a = RoadNetwork(SPACE, grid_size=6, seed=3)
        b = RoadNetwork(SPACE, grid_size=6, seed=3)
        assert all(a.position_of(n) == b.position_of(n) for n in a.graph.nodes)


class TestSyntheticTrajectories:
    def test_length_and_bounds(self):
        network = RoadNetwork(SPACE, grid_size=8, seed=4)
        generator = SyntheticTrajectoryGenerator(network, speed=60.0, seed=5)
        trajectory = generator.trajectory(0, 400)
        assert len(trajectory) == 400
        assert all(SPACE.contains_point(p) for p in trajectory.positions)

    def test_constant_speed(self):
        """Brinkhoff-style walkers move at (almost) constant speed; only the
        occasional waypoint switch may shorten a step."""
        network = RoadNetwork(SPACE, grid_size=8, seed=4)
        generator = SyntheticTrajectoryGenerator(network, speed=60.0, seed=5)
        trajectory = generator.trajectory(1, 300)
        steps = [
            trajectory.positions[k].distance_to(trajectory.positions[k + 1])
            for k in range(len(trajectory) - 1)
        ]
        near_constant = sum(1 for s in steps if math.isclose(s, 60.0, rel_tol=0.05))
        assert near_constant > 0.9 * len(steps)

    def test_determinism(self):
        network = RoadNetwork(SPACE, grid_size=8, seed=4)
        a = SyntheticTrajectoryGenerator(network, speed=60.0, seed=5).trajectory(3, 100)
        b = SyntheticTrajectoryGenerator(network, speed=60.0, seed=5).trajectory(3, 100)
        assert a.positions == b.positions

    def test_negative_speed_rejected(self):
        network = RoadNetwork(SPACE, grid_size=4, seed=4)
        with pytest.raises(ValueError):
            SyntheticTrajectoryGenerator(network, speed=-1.0)


class TestTaxiTrajectories:
    def test_variable_speed_and_stops(self):
        network = RoadNetwork(SPACE, grid_size=8, seed=6)
        generator = TaxiTrajectoryGenerator(network, base_speed=60.0, seed=7)
        trajectory = generator.trajectory(0, 500)
        steps = [
            trajectory.positions[k].distance_to(trajectory.positions[k + 1])
            for k in range(len(trajectory) - 1)
        ]
        assert any(s == 0.0 for s in steps)  # stops exist
        moving = [s for s in steps if s > 0]
        assert statistics.pstdev(moving) > 5.0  # genuinely variable speed

    def test_slower_than_free_flow_on_average(self):
        network = RoadNetwork(SPACE, grid_size=8, seed=6)
        generator = TaxiTrajectoryGenerator(network, base_speed=60.0, seed=7)
        trajectory = generator.trajectory(1, 400)
        assert trajectory.average_speed() < 60.0

    def test_bounds_and_determinism(self):
        network = RoadNetwork(SPACE, grid_size=8, seed=6)
        a = TaxiTrajectoryGenerator(network, base_speed=60.0, seed=8).trajectory(2, 200)
        b = TaxiTrajectoryGenerator(network, base_speed=60.0, seed=8).trajectory(2, 200)
        assert a.positions == b.positions
        assert all(SPACE.contains_point(p) for p in a.positions)

    def test_parameter_validation(self):
        network = RoadNetwork(SPACE, grid_size=4, seed=6)
        with pytest.raises(ValueError):
            TaxiTrajectoryGenerator(network, base_speed=-5.0)
        with pytest.raises(ValueError):
            TaxiTrajectoryGenerator(network, base_speed=5.0, stop_probability=1.0)


class TestSpeedSchedule:
    def test_scheduled_speed_respected(self):
        network = RoadNetwork(SPACE, grid_size=8, seed=9)
        schedule = lambda t: 100.0 if t < 50 else 20.0
        generator = SyntheticTrajectoryGenerator(
            network, speed=60.0, seed=10, speed_schedule=schedule
        )
        trajectory = generator.trajectory(0, 120)
        fast_steps = [
            trajectory.positions[k].distance_to(trajectory.positions[k + 1])
            for k in range(0, 40)
        ]
        slow_steps = [
            trajectory.positions[k].distance_to(trajectory.positions[k + 1])
            for k in range(60, 110)
        ]
        assert statistics.mean(fast_steps) > statistics.mean(slow_steps)

    def test_zero_speed_schedule_parks_the_walker(self):
        network = RoadNetwork(SPACE, grid_size=8, seed=9)
        generator = SyntheticTrajectoryGenerator(
            network, speed=60.0, seed=11, speed_schedule=lambda t: 0.0
        )
        trajectory = generator.trajectory(0, 50)
        assert trajectory.average_speed() == 0.0

    def test_negative_schedule_clamped(self):
        network = RoadNetwork(SPACE, grid_size=8, seed=9)
        generator = SyntheticTrajectoryGenerator(
            network, speed=60.0, seed=12, speed_schedule=lambda t: -5.0
        )
        trajectory = generator.trajectory(0, 30)
        assert trajectory.average_speed() == 0.0
