"""The cell-keyed impact-region index, including complement storage (GM)."""

from __future__ import annotations

import pytest

from repro.core import ImpactRegion
from repro.geometry import Grid, Rect
from repro.index import ImpactRegionIndex


@pytest.fixture
def grid():
    return Grid(10, Rect(0, 0, 1000, 1000))


class TestDirectStorage:
    def test_replace_and_lookup(self):
        index = ImpactRegionIndex()
        index.replace(1, [(0, 0), (0, 1)])
        index.replace(2, [(0, 1), (5, 5)])
        assert index.subscribers_covering((0, 1)) == {1, 2}
        assert index.subscribers_covering((5, 5)) == {2}
        assert index.subscribers_covering((9, 9)) == frozenset()

    def test_covers(self):
        index = ImpactRegionIndex()
        index.replace(1, [(3, 3)])
        assert index.covers(1, (3, 3))
        assert not index.covers(1, (4, 4))
        assert not index.covers(99, (3, 3))

    def test_replace_overwrites(self):
        index = ImpactRegionIndex()
        index.replace(1, [(0, 0)])
        index.replace(1, [(1, 1)])
        assert not index.covers(1, (0, 0))
        assert index.covers(1, (1, 1))

    def test_remove(self):
        index = ImpactRegionIndex()
        index.replace(1, [(0, 0)])
        index.remove(1)
        assert 1 not in index
        assert index.subscribers_covering((0, 0)) == frozenset()
        index.remove(1)  # idempotent

    def test_cells_of(self):
        index = ImpactRegionIndex()
        index.replace(1, [(0, 0), (1, 1)])
        assert index.cells_of(1) == {(0, 0), (1, 1)}
        assert index.cells_of(2) == frozenset()


class TestComplementStorage:
    def test_complement_region_lookup(self, grid):
        index = ImpactRegionIndex()
        region = ImpactRegion(grid, frozenset({(0, 0)}), complement=True)
        index.replace_region(7, region)
        assert index.covers(7, (5, 5))
        assert not index.covers(7, (0, 0))
        assert 7 in index

    def test_complement_in_subscribers_covering(self, grid):
        index = ImpactRegionIndex()
        index.replace(1, [(5, 5)])
        index.replace_region(2, ImpactRegion(grid, frozenset({(5, 5)}), complement=True))
        assert index.subscribers_covering((5, 5)) == {1}
        assert index.subscribers_covering((4, 4)) == {2}

    def test_replace_region_direct(self, grid):
        index = ImpactRegionIndex()
        index.replace_region(3, ImpactRegion(grid, frozenset({(2, 2)})))
        assert index.covers(3, (2, 2))

    def test_switch_between_representations(self, grid):
        index = ImpactRegionIndex()
        index.replace_region(4, ImpactRegion(grid, frozenset({(2, 2)})))
        index.replace_region(4, ImpactRegion(grid, frozenset({(2, 2)}), complement=True))
        assert not index.covers(4, (2, 2))
        assert index.covers(4, (3, 3))
        index.replace_region(4, ImpactRegion(grid, frozenset({(2, 2)})))
        assert index.covers(4, (2, 2))
        assert not index.covers(4, (3, 3))
