"""DNF (disjunction) extension: expression semantics and full-stack support
across every index and the live server."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import IGM, LazyBEQField, StaticMatchingField
from repro.expressions import (
    BooleanExpression,
    DnfExpression,
    Event,
    Operator,
    Predicate,
    Subscription,
    clauses_of,
)
from repro.geometry import Grid, Point, Rect
from repro.index import BEQTree, KIndex, OpIndex, QuadTree, SubscriptionIndex
from repro.system import ServerConfig, ElapsServer

from conftest import random_events

SPACE = Rect(0, 0, 10_000, 10_000)


def clause(*predicates):
    return BooleanExpression(predicates)


def make_dnf():
    return DnfExpression([
        clause(Predicate("a1", Operator.LE, 3), Predicate("a2", Operator.GE, 5)),
        clause(Predicate("a3", Operator.EQ, 7)),
    ])


class TestDnfExpression:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DnfExpression([])

    def test_or_semantics(self):
        dnf = make_dnf()
        assert dnf.matches({"a3": 7})  # second clause
        assert dnf.matches({"a1": 1, "a2": 9})  # first clause
        assert not dnf.matches({"a1": 1, "a2": 1})
        assert not dnf.matches({"a3": 6})

    def test_size_counts_all_predicates(self):
        assert len(make_dnf()) == 3

    def test_attributes_union(self):
        assert make_dnf().attributes == frozenset({"a1", "a2", "a3"})

    def test_str(self):
        rendered = str(make_dnf())
        assert " OR " in rendered and "(" in rendered

    def test_clauses_of_polymorphism(self):
        conjunction = clause(Predicate("a", Operator.EQ, 1))
        assert clauses_of(conjunction) == (conjunction,)
        assert len(clauses_of(make_dnf())) == 2
        with pytest.raises(TypeError):
            clauses_of("not an expression")

    def test_single_clause_dnf_equals_conjunction(self):
        conjunction = clause(
            Predicate("a1", Operator.LE, 3), Predicate("a2", Operator.GE, 5)
        )
        dnf = DnfExpression([conjunction])
        for attrs in ({"a1": 1, "a2": 9}, {"a1": 9, "a2": 9}, {"a2": 9},):
            assert dnf.matches(attrs) == conjunction.matches(attrs)


class TestDnfEventIndexes:
    @pytest.fixture(scope="class")
    def world(self):
        rng = random.Random(31)
        events = random_events(rng, SPACE, 350)
        quadtree = QuadTree(SPACE, max_per_leaf=16)
        kindex = KIndex()
        opindex = OpIndex()
        beq = BEQTree(SPACE, emax=16)
        for index in (quadtree, kindex, beq):
            index.insert_all(events)
        opindex.insert_all(events)
        return events, {"quadtree": quadtree, "kindex": kindex,
                        "opindex": opindex, "beq": beq}

    def test_all_indexes_agree_on_dnf(self, world):
        events, indexes = world
        subscription = Subscription(1, make_dnf(), radius=3_500.0)
        at = Point(5000, 5000)
        expected = sorted(
            e.event_id for e in events if subscription.matches(e, at)
        )
        assert expected, "workload must exercise the DNF path"
        for name, index in indexes.items():
            got = sorted(e.event_id for e in index.match(subscription, at))
            assert got == expected, name

    def test_be_match_union_no_duplicates(self, world):
        events, indexes = world
        # overlapping clauses: both can match the same event
        dnf = DnfExpression([
            clause(Predicate("a1", Operator.LE, 6)),
            clause(Predicate("a1", Operator.LE, 3)),
        ])
        subscription = Subscription(1, dnf, radius=3_000.0)
        for name in ("kindex", "opindex", "beq"):
            got = [e.event_id for e in indexes[name].be_match(subscription.expression)
                   ] if name == "beq" else [
                e.event_id for e in indexes[name].be_match(subscription)
            ]
            assert len(got) == len(set(got)), name


class TestDnfSubscriptionIndex:
    def test_match_any_clause(self):
        index = SubscriptionIndex()
        index.insert(Subscription(1, make_dnf(), 1000.0))
        assert index.match_event(Event(1, {"a3": 7}, Point(0, 0)))
        assert index.match_event(Event(2, {"a1": 2, "a2": 8}, Point(0, 0)))
        assert not index.match_event(Event(3, {"a1": 2, "a2": 2}, Point(0, 0)))

    def test_reported_once_when_both_clauses_match(self):
        index = SubscriptionIndex()
        dnf = DnfExpression([
            clause(Predicate("a", Operator.GE, 1)),
            clause(Predicate("a", Operator.GE, 0)),
        ])
        index.insert(Subscription(1, dnf, 1000.0))
        matched = index.match_event(Event(1, {"a": 5}, Point(0, 0)))
        assert [s.sub_id for s in matched] == [1]

    def test_delete_removes_all_clauses(self):
        index = SubscriptionIndex()
        sub = Subscription(1, make_dnf(), 1000.0)
        index.insert(sub)
        index.delete(sub)
        assert len(index) == 0
        assert not index.match_event(Event(1, {"a3": 7}, Point(0, 0)))

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_property_dnf_match_agrees_with_brute_force(self, data):
        rng = random.Random(data.draw(st.integers(0, 9999)))
        index = SubscriptionIndex()
        subs = []
        for sub_id in range(data.draw(st.integers(1, 10))):
            clauses = []
            for _ in range(rng.randint(1, 3)):
                predicates = [
                    Predicate(f"a{rng.randint(0, 3)}", Operator.GE, rng.randint(0, 9))
                    for _ in range(rng.randint(1, 2))
                ]
                clauses.append(BooleanExpression(predicates))
            sub = Subscription(sub_id, DnfExpression(clauses), 1000.0)
            subs.append(sub)
            index.insert(sub)
        for _ in range(8):
            attrs = {f"a{k}": rng.randint(0, 9) for k in range(rng.randint(1, 4))}
            event = Event(0, attrs, Point(0, 0))
            expected = {s.sub_id for s in subs if s.be_matches(event)}
            got = {s.sub_id for s in index.match_event(event)}
            assert got == expected


class TestDnfInTheServer:
    def test_end_to_end_dnf_subscription(self):
        grid = Grid(40, SPACE)
        server = ElapsServer(
            grid, IGM(max_cells=400),
        ServerConfig(initial_rate=1.0), event_index=BEQTree(SPACE, emax=32))
        dnf = DnfExpression([
            clause(Predicate("topic", Operator.EQ, "sale")),
            clause(Predicate("topic", Operator.EQ, "concert"),
                   Predicate("price", Operator.LT, 50)),
        ])
        sub = Subscription(1, dnf, radius=1_500.0)
        server.bootstrap([
            Event(1, {"topic": "concert", "price": 30}, Point(5_400, 5_000)),
            Event(2, {"topic": "concert", "price": 90}, Point(5_300, 5_000)),
        ])
        delivered, _ = server.subscribe(sub, Point(5_000, 5_000), Point(40, 0))
        assert [n.event.event_id for n in delivered] == [1]
        # a sale arriving nearby matches through the other clause
        notifications = server.publish(
            Event(3, {"topic": "sale"}, Point(5_200, 5_100)), now=1
        )
        assert [n.event.event_id for n in notifications] == [3]

    def test_safe_region_respects_union_of_clauses(self):
        grid = Grid(40, SPACE)
        tree = BEQTree(SPACE, emax=32)
        events = random_events(random.Random(5), SPACE, 200)
        tree.insert_all(events)
        dnf = make_dnf()
        field = LazyBEQField(grid, tree, dnf)
        matching = [e.location for e in events if dnf.matches(e.attributes)]
        static = StaticMatchingField(grid, matching)
        for cell in list(grid.all_cells())[::9]:
            assert field.is_cell_safe(cell, 900.0) == static.is_cell_safe(cell, 900.0)
