"""Dynamic environments: time-varying rate/speed schedules, the Figure-10
oracle, and wire-byte accounting in live simulations."""

from __future__ import annotations

import pytest

from repro.system import ExperimentConfig, build_simulation, run_experiment

SMALL = ExperimentConfig(
    initial_events=2000,
    subscribers=5,
    timestamps=60,
    event_rate=4.0,
    grid_n=80,
    event_ttl=30,
)


def staircase(t: int) -> float:
    return (0.0, 4.0, 8.0, 4.0)[(t // 15) % 4]


class TestRateSchedule:
    def test_scheduled_arrivals_follow_the_schedule(self):
        simulation = build_simulation(SMALL.with_(rate_schedule=staircase))
        simulation.run(SMALL.timestamps)
        published = len(simulation.server.event_index) + sum(
            1 for _ in ()  # expired ones are gone; count via ids instead
        )
        # total arrivals = sum of the schedule over the run
        expected = int(sum(staircase(t) for t in range(1, SMALL.timestamps + 1)))
        total_seen = max(simulation.server._events_by_id.keys()) - SMALL.initial_events + 1
        assert abs(total_seen - expected) <= 1

    def test_schedule_overrides_constant_rate(self):
        # the constant rate says 4/tm, the schedule says 0: no arrivals
        simulation = build_simulation(SMALL.with_(rate_schedule=lambda t: 0.0))
        simulation.run(SMALL.timestamps)
        assert len(simulation.server._events_by_id) == SMALL.initial_events


class TestOracle:
    def test_oracle_rebuilds_do_not_count_as_io(self):
        base = SMALL.with_(rate_schedule=staircase)
        plain = run_experiment(base)
        oracle = run_experiment(base.with_(oracle_rebuild=True))
        # the oracle does strictly more constructions...
        assert oracle.stats.constructions > plain.stats.constructions
        # ...but its communication stays in the same ballpark (free refreshes)
        assert oracle.stats.total_rounds <= plain.stats.total_rounds * 2 + 10

    def test_oracle_without_signal_is_inert(self):
        plain = run_experiment(SMALL)
        oracle = run_experiment(SMALL.with_(oracle_rebuild=True))
        assert oracle.stats.constructions == plain.stats.constructions

    def test_speed_schedule_trajectories(self):
        result = run_experiment(SMALL.with_(speed_schedule=lambda t: staircase(t) * 10))
        assert result.stats.total_rounds >= 0  # runs to completion

    def test_no_missed_notifications_under_dynamics(self):
        simulation = build_simulation(
            SMALL.with_(rate_schedule=staircase, oracle_rebuild=True)
        )
        simulation.run(SMALL.timestamps)
        assert simulation.verify_no_missed_notifications() == []


class TestWireBytes:
    def test_byte_accounting_in_simulation(self):
        result = run_experiment(SMALL.with_(measure_bytes=True, event_rate=8.0))
        stats = result.stats
        assert stats.wire_bytes_down > 0
        # every construction ships a safe region, so downstream carries at
        # least the bitmap bytes
        assert stats.wire_bytes_down >= stats.safe_region_bytes
        # compressed never exceeds raw
        assert stats.safe_region_bytes <= stats.raw_region_bytes

    def test_bytes_disabled_by_default(self):
        result = run_experiment(SMALL)
        assert result.stats.wire_bytes_up == 0
        assert result.stats.wire_bytes_down == 0

    def test_gm_complement_regions_ship_compact(self):
        result = run_experiment(
            SMALL.with_(strategy="GM", matching_mode="cached", measure_bytes=True)
        )
        stats = result.stats
        # GM's regions cover almost the whole grid; shipping the excluded
        # set keeps the payload small
        assert stats.constructions > 0
        assert stats.wire_bytes_down / max(stats.constructions, 1) < 64_000


class TestNegativeRate:
    def test_negative_event_rate_rejected(self):
        with pytest.raises(ValueError):
            build_simulation(SMALL.with_(event_rate=-1.0))
